#pragma once

#include <cstdio>
#include <memory>
#include <string>

#include "common/table_printer.h"
#include "runtime/policies.h"
#include "service/session.h"
#include "workload/ssb.h"

namespace costdb {
namespace bench {

/// Shared setup for the experiment binaries: a Database facade hosting a
/// small in-process SSB instance whose *fact* tables are virtually scaled
/// to warehouse size (DESIGN.md §2 and §5 explain the device). The
/// estimator, distributed simulator, and optimizer pass pipeline all live
/// inside (and are calibrated by) the facade; the members below are
/// non-owning views for experiment code that probes individual layers.
struct BenchContext {
  std::unique_ptr<Database> db;
  /// The client surface over `db` — experiment code that plans/executes
  /// whole queries enters here (ROADMAP.md "Rule"); the raw members below
  /// are for probing individual layers.
  std::unique_ptr<Session> session;
  MetadataService& meta;
  const HardwareCalibration& hw;
  const InstanceType& node;
  CostEstimator* estimator;
  DistributedSimulator* simulator;
  /// Experiment-layer handle for shape-pinned planning (PlanShaped etc.);
  /// regular planning goes through db->PlanSql / db->Prepare.
  std::unique_ptr<BiObjectiveOptimizer> optimizer;

  explicit BenchContext(std::unique_ptr<Database> database)
      : db(std::move(database)),
        session(std::make_unique<Session>(db.get())),
        meta(*db->meta()),
        hw(*db->hardware()),
        node(db->node_type()),
        estimator(db->estimator()),
        simulator(db->simulator()),
        optimizer(std::make_unique<BiObjectiveOptimizer>(&meta, estimator)) {}

  static BenchContext Make(double scale = 0.01,
                           double fact_virtual_scale = 2e5,
                           size_t row_group_size = 512) {
    DatabaseOptions db_opts;
    // Experiments compare estimates against simulated truth under a fixed
    // calibration; the feedback loop is exercised by the service tests.
    db_opts.enable_calibration = false;
    BenchContext ctx(std::make_unique<Database>(db_opts));
    SsbOptions opts;
    opts.scale = scale;
    opts.row_group_size = row_group_size;
    LoadSsb(&ctx.meta, opts);
    ctx.meta.SetVirtualScale("lineorder", fact_virtual_scale);
    ctx.meta.SetVirtualScale("shipments", fact_virtual_scale);
    // Dimensions grow more slowly than facts (SSB keeps dates fixed and
    // scales customer/supplier/part sublinearly); a 10x smaller factor
    // preserves realistic star-schema proportions.
    ctx.meta.SetVirtualScale("customer", fact_virtual_scale / 10.0);
    ctx.meta.SetVirtualScale("supplier", fact_virtual_scale / 10.0);
    ctx.meta.SetVirtualScale("part", fact_virtual_scale / 10.0);
    return ctx;
  }

  /// Prepare + re-derive truth (used after changing stats error factors).
  Result<PreparedQuery> Prepare(const std::string& sql,
                                const UserConstraint& c) {
    return db->Prepare(sql, c);
  }
};

inline void PrintHeader(const std::string& id, const std::string& claim) {
  std::printf("==========================================================\n");
  std::printf("%s\n", id.c_str());
  std::printf("%s\n", claim.c_str());
  std::printf("==========================================================\n");
}

}  // namespace bench
}  // namespace costdb
