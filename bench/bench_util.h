#pragma once

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/table_printer.h"
#include "runtime/policies.h"
#include "service/session.h"
#include "workload/ssb.h"

namespace costdb {
namespace bench {

/// Shared setup for the experiment binaries: a Database facade hosting a
/// small in-process SSB instance whose *fact* tables are virtually scaled
/// to warehouse size (DESIGN.md §2 and §5 explain the device). The
/// estimator, distributed simulator, and optimizer pass pipeline all live
/// inside (and are calibrated by) the facade; the members below are
/// non-owning views for experiment code that probes individual layers.
struct BenchContext {
  std::unique_ptr<Database> db;
  /// The client surface over `db` — experiment code that plans/executes
  /// whole queries enters here (ROADMAP.md "Rule"); the raw members below
  /// are for probing individual layers.
  std::unique_ptr<Session> session;
  MetadataService& meta;
  const HardwareCalibration& hw;
  const InstanceType& node;
  CostEstimator* estimator;
  DistributedSimulator* simulator;
  /// Experiment-layer handle for shape-pinned planning (PlanShaped etc.);
  /// regular planning goes through db->PlanSql / db->Prepare.
  std::unique_ptr<BiObjectiveOptimizer> optimizer;

  explicit BenchContext(std::unique_ptr<Database> database)
      : db(std::move(database)),
        session(std::make_unique<Session>(db.get())),
        meta(*db->meta()),
        hw(*db->hardware()),
        node(db->node_type()),
        estimator(db->estimator()),
        simulator(db->simulator()),
        optimizer(std::make_unique<BiObjectiveOptimizer>(&meta, estimator)) {}

  static BenchContext Make(double scale = 0.01,
                           double fact_virtual_scale = 2e5,
                           size_t row_group_size = 512) {
    DatabaseOptions db_opts;
    // Experiments compare estimates against simulated truth under a fixed
    // calibration; the feedback loop is exercised by the service tests.
    db_opts.enable_calibration = false;
    BenchContext ctx(std::make_unique<Database>(db_opts));
    SsbOptions opts;
    opts.scale = scale;
    opts.row_group_size = row_group_size;
    LoadSsb(&ctx.meta, opts);
    ctx.meta.SetVirtualScale("lineorder", fact_virtual_scale);
    ctx.meta.SetVirtualScale("shipments", fact_virtual_scale);
    // Dimensions grow more slowly than facts (SSB keeps dates fixed and
    // scales customer/supplier/part sublinearly); a 10x smaller factor
    // preserves realistic star-schema proportions.
    ctx.meta.SetVirtualScale("customer", fact_virtual_scale / 10.0);
    ctx.meta.SetVirtualScale("supplier", fact_virtual_scale / 10.0);
    ctx.meta.SetVirtualScale("part", fact_virtual_scale / 10.0);
    return ctx;
  }

  /// Prepare + re-derive truth (used after changing stats error factors).
  Result<PreparedQuery> Prepare(const std::string& sql,
                                const UserConstraint& c) {
    return db->Prepare(sql, c);
  }
};

/// Machine-readable bench output: a flat JSON object written next to the
/// human table, so CI can persist a `BENCH_<name>.json` snapshot per run
/// and trend the numbers over time. Two kinds of keys by convention:
///   gate_*  deterministic for a fixed --smoke configuration (row counts,
///           pruning fractions, pass bits) — CI's regression gate compares
///           these against the committed snapshot within a tolerance;
///   others  trajectory data (wall times, throughputs, speedups) — they
///           are machine- and load-dependent, so they are recorded for
///           trend analysis but never gated against a snapshot.
/// Insertion order is preserved; values are emitted one per line so the
/// CI comparator can stay a line-oriented awk script.
class BenchJson {
 public:
  void SetStr(const std::string& key, const std::string& value) {
    entries_.emplace_back(key, "\"" + value + "\"");
  }
  void Set(const std::string& key, double value) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    entries_.emplace_back(key, buf);
  }
  void SetInt(const std::string& key, long long value) {
    entries_.emplace_back(key, std::to_string(value));
  }
  void SetBool(const std::string& key, bool value) {
    entries_.emplace_back(key, value ? "true" : "false");
  }

  std::string ToString() const {
    std::string out = "{\n";
    for (size_t i = 0; i < entries_.size(); ++i) {
      out += "  \"" + entries_[i].first + "\": " + entries_[i].second;
      if (i + 1 < entries_.size()) out += ",";
      out += "\n";
    }
    out += "}\n";
    return out;
  }

  /// Returns false (with a message on stdout) when the file can't be
  /// written, so benches can fail loudly instead of silently skipping the
  /// snapshot CI expects.
  bool WriteFile(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::printf("cannot write bench json to %s\n", path.c_str());
      return false;
    }
    const std::string body = ToString();
    std::fwrite(body.data(), 1, body.size(), f);
    std::fclose(f);
    std::printf("bench json written to %s\n", path.c_str());
    return true;
  }

 private:
  std::vector<std::pair<std::string, std::string>> entries_;
};

/// Pull `--json <path>` out of argv (empty string when absent). Kept here
/// so every bench_util-based binary advertises the flag the same way — the
/// CI smoke loop greps for "--json" to decide whether to request a
/// snapshot.
inline std::string JsonPathFromArgs(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) return argv[i + 1];
  }
  return std::string();
}

inline void PrintHeader(const std::string& id, const std::string& claim) {
  std::printf("==========================================================\n");
  std::printf("%s\n", id.c_str());
  std::printf("%s\n", claim.c_str());
  std::printf("==========================================================\n");
}

}  // namespace bench
}  // namespace costdb
