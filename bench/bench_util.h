#pragma once

#include <cstdio>
#include <memory>
#include <string>

#include "common/table_printer.h"
#include "runtime/policies.h"
#include "sim/harness.h"
#include "workload/ssb.h"

namespace costdb {
namespace bench {

/// Shared setup for the experiment binaries: a small in-process SSB
/// instance whose *fact* tables are virtually scaled to warehouse size
/// (DESIGN.md §2 and §5 explain the device), plus the estimator, the
/// distributed simulator, and the bi-objective optimizer wired together.
struct BenchContext {
  MetadataService meta;
  HardwareCalibration hw;
  InstanceType node;
  std::unique_ptr<CostEstimator> estimator;
  std::unique_ptr<DistributedSimulator> simulator;
  std::unique_ptr<BiObjectiveOptimizer> optimizer;

  static BenchContext Make(double scale = 0.01,
                           double fact_virtual_scale = 2e5,
                           size_t row_group_size = 512) {
    BenchContext ctx;
    SsbOptions opts;
    opts.scale = scale;
    opts.row_group_size = row_group_size;
    LoadSsb(&ctx.meta, opts);
    ctx.meta.SetVirtualScale("lineorder", fact_virtual_scale);
    ctx.meta.SetVirtualScale("shipments", fact_virtual_scale);
    // Dimensions grow more slowly than facts (SSB keeps dates fixed and
    // scales customer/supplier/part sublinearly); a 10x smaller factor
    // preserves realistic star-schema proportions.
    ctx.meta.SetVirtualScale("customer", fact_virtual_scale / 10.0);
    ctx.meta.SetVirtualScale("supplier", fact_virtual_scale / 10.0);
    ctx.meta.SetVirtualScale("part", fact_virtual_scale / 10.0);
    ctx.node = PricingCatalog::Default().default_node();
    ctx.estimator = std::make_unique<CostEstimator>(&ctx.hw, &ctx.node);
    ctx.simulator = std::make_unique<DistributedSimulator>(ctx.estimator.get());
    ctx.optimizer =
        std::make_unique<BiObjectiveOptimizer>(&ctx.meta, ctx.estimator.get());
    return ctx;
  }

  /// Prepare + re-derive truth (used after changing stats error factors).
  Result<PreparedQuery> Prepare(const std::string& sql,
                                const UserConstraint& c) {
    auto prepared = PrepareQuery(&meta, *optimizer, sql, c);
    if (!prepared.ok()) return prepared;
    CardinalityEstimator truth(&meta, &prepared->query.relations, true);
    prepared->truth = ComputeVolumes(prepared->planned.plan.get(), truth);
    return prepared;
  }
};

inline void PrintHeader(const std::string& id, const std::string& claim) {
  std::printf("==========================================================\n");
  std::printf("%s\n", id.c_str());
  std::printf("%s\n", claim.c_str());
  std::printf("==========================================================\n");
}

}  // namespace bench
}  // namespace costdb
