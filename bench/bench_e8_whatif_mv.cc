// E8 — paper Section 4: the What-If Service prices a materialized-view
// proposal in dollars (benefit x vs cost y per day, accept iff x-y>0) and
// the decision matches ground truth obtained by actually applying it.
// bench-baseline: none — this bench emits no JSON snapshot; its
// acceptance gates are its PASS/FAIL exit code, not a committed
// ci/bench_baselines/ entry (see the drift guard in ci/build_and_test.sh).
#include "bench_util.h"
#include "tuning/what_if.h"

using namespace costdb;
using namespace costdb::bench;

int main() {
  PrintHeader("E8: dollar-metric what-if for materialized views",
              "Claim (S4): with elastic background compute the MV trade-\n"
              "off reduces to money: accept iff x - y > 0; the report is\n"
              "customer-readable.");
  BenchContext ctx = BenchContext::Make(0.01, 2e5, 128);

  TuningAction action;
  action.kind = TuningAction::Kind::kMaterializedView;
  action.mv_name = "mv_lineorder_dates";
  action.mv_tables = {"dates", "lineorder"};
  action.mv_join_edges = {"dates.d_datekey=lineorder.lo_datekey"};
  action.mv_cluster_column = "d_year";

  WhatIfService what_if(&ctx.meta, ctx.estimator);
  TablePrinter t({"Q3 runs/day", "benefit x/day", "cost y/day", "net/day",
                  "decision", "truth net/day", "decision correct"});
  for (double rate : {0.1, 1.0, 10.0, 100.0, 1000.0}) {
    std::vector<WorkloadItem> workload = {{"Q3", FindQuery("Q3").sql, rate}};
    auto report = what_if.Evaluate(action, workload);
    if (!report.ok()) continue;
    // Ground truth: per-run costs measured by applying the action on a
    // hypothetical catalog (same machinery, but with the simulator's
    // skew/quantization effects folded in via the what-if deltas), over a
    // 30-day horizon including the amortized build.
    double true_net = report->per_query[0].savings_per_day() -
                      report->cost_per_day -
                      report->build_cost / 30.0;
    bool truth_accepts = true_net > 0.0;
    t.AddRow({StrFormat("%.1f", rate), FormatDollars(report->benefit_per_day),
              FormatDollars(report->cost_per_day),
              FormatDollars(report->net_per_day()),
              report->accepted ? "ACCEPT" : "reject",
              FormatDollars(true_net),
              report->accepted == truth_accepts ? "yes" : "NO"});
  }
  std::printf("%s", t.ToString().c_str());

  std::printf("\nSample customer-facing report at 100 runs/day:\n\n");
  auto report = what_if.Evaluate(
      action, {{"Q3", FindQuery("Q3").sql, 100.0}});
  if (report.ok()) std::printf("%s", report->ToString().c_str());
  return 0;
}
