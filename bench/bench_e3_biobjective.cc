// E3 — paper Section 3.2: downgrading full multi-objective (Pareto-set)
// optimization to constrained single-objective search keeps plan quality
// while shrinking optimizer effort by orders of magnitude.
// bench-baseline: none — this bench emits no JSON snapshot; its
// acceptance gates are its PASS/FAIL exit code, not a committed
// ci/bench_baselines/ entry (see the drift guard in ci/build_and_test.sh).
#include <chrono>

#include "bench_util.h"

using namespace costdb;
using namespace costdb::bench;

int main() {
  PrintHeader("E3: constrained search vs full Pareto enumeration",
              "Claim (S3.2): users state one constraint, so the optimizer\n"
              "can solve a constrained single-objective problem at\n"
              "classic-optimizer complexity instead of materializing the\n"
              "whole frontier.");
  BenchContext ctx = BenchContext::Make();

  TablePrinter t({"query", "pipelines", "oracle states", "oracle ms",
                  "greedy states", "greedy ms", "cost vs oracle"});
  for (const auto& qid : {"Q3", "Q5", "Q7"}) {
    auto prepared =
        ctx.Prepare(FindQuery(qid).sql, UserConstraint::Sla(1e9));
    if (!prepared.ok()) continue;
    DopPlannerOptions opts;
    opts.max_dop = 16;  // keeps the oracle tractable on 5-6 pipelines
    DopPlanner planner(ctx.estimator, opts);

    auto t0 = std::chrono::steady_clock::now();
    int oracle_states = 0;
    auto frontier = planner.EnumeratePareto(prepared->planned.pipelines,
                                            prepared->planned.volumes,
                                            &oracle_states);
    auto t1 = std::chrono::steady_clock::now();
    if (frontier.empty()) continue;
    Seconds sla = frontier[frontier.size() / 2].latency * 1.01;
    Dollars oracle_cost = 1e18;
    for (const auto& f : frontier) {
      if (f.latency <= sla) oracle_cost = std::min(oracle_cost, f.cost);
    }
    auto t2 = std::chrono::steady_clock::now();
    auto greedy = planner.Plan(prepared->planned.pipelines,
                               prepared->planned.volumes,
                               UserConstraint::Sla(sla));
    auto t3 = std::chrono::steady_clock::now();
    double oracle_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    double greedy_ms = std::chrono::duration<double, std::milli>(t3 - t2).count();
    t.AddRow({qid,
              std::to_string(prepared->planned.pipelines.pipelines.size()),
              std::to_string(oracle_states), StrFormat("%.1f", oracle_ms),
              std::to_string(greedy.states_explored),
              StrFormat("%.1f", greedy_ms),
              StrFormat("%.2fx", greedy.estimate.cost / oracle_cost)});
  }
  std::printf("%s", t.ToString().c_str());
  std::printf(
      "\nThe greedy constrained search visits a small fraction of the\n"
      "oracle's states and stays within a small factor of the frontier-\n"
      "optimal cost at the same SLA.\n");
  return 0;
}
