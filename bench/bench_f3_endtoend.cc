// F3 — paper Figure 3: the whole architecture in one loop. Queries flow
// through the bi-objective optimizer onto elastic compute; execution logs
// feed the Statistics Service; advisors propose tuning actions; the
// What-If Service prices them in dollars; accepted actions run on
// background compute; the workload gets cheaper.
// bench-baseline: none — this bench emits no JSON snapshot; its
// acceptance gates are its PASS/FAIL exit code, not a committed
// ci/bench_baselines/ entry (see the drift guard in ci/build_and_test.sh).
#include <chrono>

#include "bench_util.h"
#include "stats/statistics_service.h"
#include "tuning/advisors.h"
#include "tuning/what_if.h"
#include "workload/trace.h"

using namespace costdb;
using namespace costdb::bench;

int main() {
  auto wall_start = std::chrono::steady_clock::now();
  PrintHeader("F3: cost-intelligent warehouse, end to end",
              "Architecture walk-through (Fig.3): optimize -> execute ->\n"
              "log -> summarize -> propose -> what-if -> apply -> save.");
  BenchContext ctx = BenchContext::Make(0.01, 2e5, 128);
  UserConstraint sla = UserConstraint::Sla(45.0);

  // Day 1-7: a recurring workload dominated by the dates join.
  TraceOptions trace_opts;
  trace_opts.duration = 7.0 * kSecondsPerDay;
  trace_opts.queries_per_hour = 30.0;
  trace_opts.template_weights = {{"Q3", 6.0}, {"Q4", 2.0}, {"Q10", 2.0}};
  auto trace = GenerateTrace(trace_opts);
  auto counts = CountByTemplate(trace);

  StatisticsService stats;
  Dollars bill_before = 0.0;
  std::map<std::string, Dollars> per_run_cost;
  for (const auto& [id, count] : counts) {
    auto prepared = ctx.Prepare(FindQuery(id).sql, sla);
    if (!prepared.ok()) continue;
    per_run_cost[id] = prepared->planned.estimate.cost;
    bill_before += prepared->planned.estimate.cost * count;
  }
  for (const auto& ev : trace) {
    auto q = ctx.db->BindSql(FindQuery(ev.query_id).sql);
    if (!q.ok()) continue;
    stats.Ingest(MakeExecutionRecord(ev.query_id, ev.at, *q, 2.0, 16.0,
                                     per_run_cost[ev.query_id]));
  }
  std::printf("\nweek 1: %zu queries, bill %s\n", trace.size(),
              FormatDollars(bill_before).c_str());
  std::printf("statistics service: %zu join-graph edges, top edge weight "
              "%.0f\n",
              stats.join_graph().size(),
              stats.join_graph().empty()
                  ? 0.0
                  : std::max_element(stats.join_graph().begin(),
                                     stats.join_graph().end(),
                                     [](auto& a, auto& b) {
                                       return a.second < b.second;
                                     })
                        ->second);

  // Advisors propose; the What-If Service prices each proposal.
  WorkloadPredictor predictor;
  std::vector<WorkloadItem> workload;
  for (const auto& [id, count] : counts) {
    workload.push_back(
        {id, FindQuery(id).sql,
         predictor.PredictDailyArrivals(stats.HourlyArrivals(id))});
  }
  WhatIfService what_if(&ctx.meta, ctx.estimator);
  auto proposals = ProposeMvActions(stats, 2);
  auto reclusters = ProposeReclusterActions(stats, ctx.meta, 1);
  proposals.insert(proposals.end(), reclusters.begin(), reclusters.end());

  CloudEnv env;
  LocalEngine engine(8);
  int applied = 0;
  for (const auto& action : proposals) {
    auto report = what_if.Evaluate(action, workload);
    if (!report.ok()) continue;
    std::printf("\n%s", report->ToString().c_str());
    if (report->accepted) {
      if (what_if.Apply(*report, &ctx.meta, &env, &engine, 0.0).ok()) {
        ++applied;
      }
    }
  }

  // Week 2: the same predicted workload after tuning. MV-covered queries
  // are re-priced through the rewrite; everything else replans on the
  // updated catalog.
  Dollars bill_after = 0.0;
  for (const auto& item : workload) {
    Dollars cost = per_run_cost[item.query_id];
    const TuningAction* rewrite = nullptr;
    TuningAction mv_action;
    for (const auto& mv : ctx.meta.materialized_views()) {
      mv_action.kind = TuningAction::Kind::kMaterializedView;
      mv_action.mv_name = mv.name;
      mv_action.mv_tables = mv.base_tables;
      mv_action.mv_join_edges = mv.join_edges;
      rewrite = &mv_action;
    }
    std::shared_ptr<Table> mv_table;
    if (rewrite != nullptr && ctx.meta.HasTable(rewrite->mv_name)) {
      mv_table = ctx.meta.GetTable(rewrite->mv_name).value();
    }
    auto priced =
        what_if.EstimateQueryCost(ctx.meta, item.sql, rewrite, mv_table);
    if (priced.ok()) cost = *priced;
    bill_after += cost * item.runs_per_day * 7.0;
  }
  Dollars tuning_spend = env.billing()->TotalForPrefix("tuning:");
  std::printf("\nsummary\n");
  TablePrinter t({"", "$"});
  t.AddRow({"week-1 bill (before tuning)", FormatDollars(bill_before)});
  t.AddRow({"week-2 bill (after tuning)", FormatDollars(bill_after)});
  t.AddRow({"one-time background tuning spend", FormatDollars(tuning_spend)});
  t.AddRow({"actions applied", std::to_string(applied)});
  std::printf("%s", t.ToString().c_str());
  std::printf("wall clock: %.2fs (tracks engine speed; the MV builds above "
              "run on the vectorized LocalEngine)\n",
              std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            wall_start)
                  .count());
  return 0;
}
