// E10 — paper Section 4: the Statistics Service must itself be cheap;
// sampling trades summary accuracy for profiling overhead and storage.
// bench-baseline: none — this bench emits no JSON snapshot; its
// acceptance gates are its PASS/FAIL exit code, not a committed
// ci/bench_baselines/ entry (see the drift guard in ci/build_and_test.sh).
#include <cmath>

#include "bench_util.h"
#include "stats/statistics_service.h"
#include "tuning/predictor.h"
#include "workload/trace.h"

using namespace costdb;
using namespace costdb::bench;

int main() {
  PrintHeader("E10: Statistics Service overhead vs summary accuracy",
              "Claim (S4): vary the sampling rate to balance the cost of\n"
              "generating statistics against their comprehensiveness.");
  BenchContext ctx = BenchContext::Make(0.005);

  // A 7-day workload trace with a diurnal pattern.
  TraceOptions trace_opts;
  trace_opts.duration = 7.0 * kSecondsPerDay;
  trace_opts.queries_per_hour = 120.0;
  trace_opts.diurnal_amplitude = 0.6;
  trace_opts.template_weights = {{"Q3", 5.0}, {"Q4", 3.0}, {"Q6", 2.0},
                                 {"Q10", 1.0}};
  auto trace = GenerateTrace(trace_opts);

  // Pre-bind the templates once.
  std::map<std::string, BoundQuery> bound;
  for (const auto& id : {"Q3", "Q4", "Q6", "Q10"}) {
    auto q = ctx.db->BindSql(FindQuery(id).sql);
    if (q.ok()) bound.emplace(id, std::move(*q));
  }

  // Reference summaries at full sampling.
  auto ingest_all = [&](StatisticsService* stats) {
    for (const auto& ev : trace) {
      auto it = bound.find(ev.query_id);
      if (it == bound.end()) continue;
      stats->Ingest(MakeExecutionRecord(ev.query_id, ev.at, it->second, 2.0,
                                        16.0, 0.01));
    }
  };
  StatisticsService reference;
  ingest_all(&reference);
  WorkloadPredictor predictor;
  double ref_rate = predictor.Predict(reference.HourlyArrivals("Q3"))
                        .arrivals_per_hour;

  TablePrinter t({"sampling", "profiling ovhd", "join-graph err",
                  "Q3 rate err", "hot records", "cold buckets"});
  for (double rate : {1.0, 0.3, 0.1, 0.03, 0.01}) {
    StatisticsService::Options opts;
    opts.sampling_rate = rate;
    StatisticsService stats(opts);
    ingest_all(&stats);
    // Join-graph relative error vs the reference, averaged over edges.
    double err_sum = 0.0;
    size_t n = 0;
    for (const auto& [edge, weight] : reference.join_graph()) {
      auto it = stats.join_graph().find(edge);
      double est = it == stats.join_graph().end() ? 0.0 : it->second;
      err_sum += std::abs(est - weight) / weight;
      ++n;
    }
    double rate_est = predictor.Predict(stats.HourlyArrivals("Q3"))
                          .arrivals_per_hour;
    t.AddRow({StrFormat("%.0f%%", rate * 100),
              StrFormat("%.2f%%", stats.ProfilingOverhead(100.0)),
              StrFormat("%.1f%%", n ? 100.0 * err_sum / n : 0.0),
              StrFormat("%.1f%%",
                        100.0 * std::abs(rate_est - ref_rate) /
                            std::max(ref_rate, 1e-9)),
              std::to_string(stats.hot_record_count()),
              std::to_string(stats.cold_bucket_count())});
  }
  std::printf("trace: %zu queries over 7 days, diurnal mixture\n%s",
              trace.size(), t.ToString().c_str());
  std::printf(
      "\nProfiling overhead shrinks ~linearly with the sampling rate while\n"
      "summary errors grow slowly -- the knob the paper calls for.\n");
  return 0;
}
