// F2 — paper Figure 2: the performance-cost plane. Manual configurations
// scatter above the Pareto frontier; the cost-intelligent optimizer's
// constrained search lands on (or near) the frontier for any user
// preference point.
// bench-baseline: none — this bench emits no JSON snapshot; its
// acceptance gates are its PASS/FAIL exit code, not a committed
// ci/bench_baselines/ entry (see the drift guard in ci/build_and_test.sh).
#include <algorithm>

#include "bench_util.h"

using namespace costdb;
using namespace costdb::bench;

int main() {
  PrintHeader("F2: Pareto frontier of performance vs cost",
              "Claim (S2, Fig.2): a cost-intelligent warehouse self-\n"
              "configures onto the Pareto frontier; users pick trade-offs\n"
              "by constraint, not by cluster size.");
  BenchContext ctx = BenchContext::Make();
  const std::string sql = FindQuery("Q7").sql;

  // The full configuration space: per-pipeline DOP grid (oracle).
  UserConstraint loose = UserConstraint::Sla(1e9);
  auto prepared = ctx.Prepare(sql, loose);
  if (!prepared.ok()) {
    std::printf("prepare failed: %s\n", prepared.status().ToString().c_str());
    return 1;
  }
  DopPlannerOptions grid_opts;
  grid_opts.max_dop = 64;
  DopPlanner planner(ctx.estimator, grid_opts);
  int states = 0;
  auto frontier = planner.EnumeratePareto(prepared->planned.pipelines,
                                          prepared->planned.volumes, &states);
  std::printf("\nconfiguration space: %d DOP assignments evaluated\n", states);
  TablePrinter t({"frontier point", "latency", "cost"});
  for (size_t i = 0; i < frontier.size(); i += std::max<size_t>(1, frontier.size() / 12)) {
    t.AddRow({StrFormat("#%zu", i), FormatSeconds(frontier[i].latency),
              FormatDollars(frontier[i].cost)});
  }
  std::printf("%s", t.ToString().c_str());

  // Manual T-shirt points (uniform DOP) vs the frontier.
  TablePrinter manual({"manual config", "latency", "cost",
                       "above frontier by"});
  for (int nodes : {2, 8, 32}) {
    DopMap dops;
    for (const auto& p : prepared->planned.pipelines.pipelines) {
      dops[p.id] = nodes;
    }
    auto est = ctx.estimator->EstimatePlan(prepared->planned.pipelines, dops,
                                           prepared->planned.volumes);
    Dollars frontier_cost = 1e18;
    for (const auto& f : frontier) {
      if (f.latency <= est.latency) {
        frontier_cost = std::min(frontier_cost, f.cost);
      }
    }
    manual.AddRow({StrFormat("%d nodes uniform", nodes),
                   FormatSeconds(est.latency), FormatDollars(est.cost),
                   StrFormat("%.1f%%",
                             100.0 * (est.cost / frontier_cost - 1.0))});
  }
  std::printf("\n%s", manual.ToString().c_str());

  // Auto-configuration at three user preference points.
  TablePrinter autos({"user constraint", "latency", "cost",
                      "above frontier by"});
  Seconds lo = frontier.front().latency;
  Seconds hi = frontier.back().latency;
  for (double f : {0.15, 0.4, 0.8}) {
    Seconds sla = lo + f * (hi - lo);
    auto planned = ctx.Prepare(sql, UserConstraint::Sla(sla));
    if (!planned.ok()) continue;
    const auto& est = planned->planned.estimate;
    Dollars frontier_cost = 1e18;
    for (const auto& pt : frontier) {
      if (pt.latency <= sla) frontier_cost = std::min(frontier_cost, pt.cost);
    }
    autos.AddRow({"SLA " + FormatSeconds(sla), FormatSeconds(est.latency),
                  FormatDollars(est.cost),
                  StrFormat("%.1f%%",
                            100.0 * (est.cost / frontier_cost - 1.0))});
  }
  std::printf("\n%s", autos.ToString().c_str());
  return 0;
}
