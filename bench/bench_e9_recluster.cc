// E9 — paper Section 4's motivating example: reclustering a huge table
// speeds up matching predicates but repopulating it is enormous; the
// dollar report makes the break-even horizon visible to a non-expert.
// bench-baseline: none — this bench emits no JSON snapshot; its
// acceptance gates are its PASS/FAIL exit code, not a committed
// ci/bench_baselines/ entry (see the drift guard in ci/build_and_test.sh).
#include "bench_util.h"
#include "tuning/what_if.h"

using namespace costdb;
using namespace costdb::bench;

int main() {
  PrintHeader("E9: reclustering a large table, priced in dollars",
              "Claim (S4): without a uniform money metric users cannot\n"
              "tell whether a petabyte-scale recluster pays off; the\n"
              "what-if report states the payback horizon directly.");

  TuningAction action;
  action.kind = TuningAction::Kind::kRecluster;
  action.table = "lineorder";
  action.column = "lo_quantity";

  // Sweep the virtual table size: the build cost grows linearly with the
  // table while the per-query benefit stays proportional, shifting the
  // break-even.
  TablePrinter t({"virtual table size", "build cost", "benefit x/day",
                  "cost y/day", "net/day", "decision", "payback"});
  for (double scale : {1e4, 1e5, 1e6}) {
    BenchContext ctx = BenchContext::Make(0.01, scale, 128);
    WhatIfService what_if(&ctx.meta, ctx.estimator);
    std::vector<WorkloadItem> workload = {
        {"Q10", FindQuery("Q10").sql, 20.0}};
    auto report = what_if.Evaluate(action, workload);
    if (!report.ok()) continue;
    double bytes = ctx.meta.GetTable("lineorder").value()->EstimateBytes() *
                   scale;
    t.AddRow({FormatBytes(bytes), FormatDollars(report->build_cost),
              FormatDollars(report->benefit_per_day),
              FormatDollars(report->cost_per_day),
              FormatDollars(report->net_per_day()),
              report->accepted ? "ACCEPT" : "reject",
              report->accepted
                  ? StrFormat("%.1f days", report->payback_days)
                  : "-"});
  }
  std::printf("%s", t.ToString().c_str());

  std::printf("\nRepeat-rate sweep at the mid table size:\n");
  BenchContext ctx = BenchContext::Make(0.01, 1e5, 128);
  WhatIfService what_if(&ctx.meta, ctx.estimator);
  TablePrinter r({"Q10 runs/day", "net/day", "decision", "payback"});
  for (double rate : {0.01, 1.0, 100.0}) {
    auto report = what_if.Evaluate(
        action, {{"Q10", FindQuery("Q10").sql, rate}});
    if (!report.ok()) continue;
    r.AddRow({StrFormat("%.2f", rate), FormatDollars(report->net_per_day()),
              report->accepted ? "ACCEPT" : "reject",
              report->accepted ? StrFormat("%.1f days", report->payback_days)
                               : "-"});
  }
  std::printf("%s", r.ToString().c_str());
  return 0;
}
