// E15: Elastic sharded execution driven by real resize policies.
//
// Claims demonstrated (and gated — exit 1 on violation):
//  (a) an elastic run that grows 2 -> 6 workers at the aggregation's
//      shuffle boundary is bit-identical to the fixed-width LocalEngine
//      result, and its worker-second ledger bills every wall second at
//      the width actually held (a fixed-width run bills exactly
//      wall x workers);
//  (b) the ElasticController accepts a policy's grow proposal when the
//      calibrated cost model prices it net-positive, and *declines* the
//      same proposal when the spin-up term makes the resize net-negative
//      — the paper's "resize only when it pays for itself in dollars";
//  (c) informational: the facade's elastic path bills the run on the
//      cloud meter, and the simulator's resize predictions stay
//      comparable to the real ledger (CheckElasticParity).
//
// `--smoke` runs a smaller configuration and gates (a) + (b) for CI.

// bench-baseline: none — this bench emits no JSON snapshot; its
// acceptance gates are its PASS/FAIL exit code, not a committed
// ci/bench_baselines/ entry (see the drift guard in ci/build_and_test.sh).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>

#include "bench_util.h"
#include "common/rng.h"
#include "exec/sharded_engine.h"
#include "runtime/elastic_controller.h"
#include "runtime/policies.h"
#include "sim/harness.h"
#include "storage/partition.h"

namespace costdb {
namespace {

std::unique_ptr<Database> MakeDb(size_t rows) {
  DatabaseOptions opts;
  opts.enable_calibration = false;
  auto db = std::make_unique<Database>(opts);
  Rng rng(19);
  DataChunk chunk({LogicalType::kInt64, LogicalType::kInt64,
                   LogicalType::kInt64, LogicalType::kDouble});
  for (size_t i = 0; i < rows; ++i) {
    chunk.AppendRow({Value(static_cast<int64_t>(i)),
                     Value(rng.UniformInt(0, 999)),
                     Value(rng.UniformInt(1, 10)),
                     Value(rng.Uniform(0.0, 1000.0))});
  }
  auto sales = std::make_shared<Table>(
      "sales", std::vector<ColumnDef>{{"sid", LogicalType::kInt64},
                                      {"grp", LogicalType::kInt64},
                                      {"qty", LogicalType::kInt64},
                                      {"price", LogicalType::kDouble}},
      8192);
  sales->Append(chunk);
  db->meta()->RegisterTable(sales);
  db->meta()->AnalyzeAll();
  return db;
}

std::string ChunkFingerprint(const DataChunk& chunk) {
  std::string all, key;
  for (size_t r = 0; r < chunk.num_rows(); ++r) {
    EncodeChunkKeyInto(chunk, chunk.num_columns(), r, &key);
    all += key;
    all += '\n';
  }
  return all;
}

/// Policy that always proposes the widest allowed cluster — the
/// over-provisioner the cost model must keep honest.
class GreedyPolicy : public ResizePolicy {
 public:
  const char* name() const override { return "greedy"; }
  int OnTick(const PolicyContext& ctx, const PipelineRunView&) override {
    return ctx.max_dop;
  }
};

}  // namespace

int Main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  bench::PrintHeader(
      "E15: elastic sharded execution (resize at fragment boundaries)",
      "Mid-query resizes keep results bit-identical, worker-seconds are "
      "billed as held, and the cost model vetoes net-negative resizes.");

  const size_t rows = smoke ? 1'000'000 : 4'000'000;
  auto db = MakeDb(rows);
  const std::string sql =
      "SELECT grp, count(*) AS c, sum(qty) AS s FROM sales "
      "WHERE price > 100.0 GROUP BY grp";
  auto planned = db->PlanSql(sql, UserConstraint());
  if (!planned.ok()) {
    std::fprintf(stderr, "planning failed: %s\n",
                 planned.status().ToString().c_str());
    return 1;
  }

  // ---- (a) grow 2 -> 6 mid-query: bit-identical + billed as held ------
  LocalEngine local(4);
  auto reference = local.Execute(planned->plan.get());
  if (!reference.ok()) {
    std::fprintf(stderr, "local execute failed\n");
    return 1;
  }
  ShardedEngine elastic(2);
  elastic.SetResizer([](const FragmentBoundary&) { return size_t{6}; });
  auto grown = elastic.Execute(planned->plan.get());
  if (!grown.ok()) {
    std::fprintf(stderr, "elastic execute failed: %s\n",
                 grown.status().ToString().c_str());
    return 1;
  }
  const WorkerUsage usage = elastic.last_usage();
  const bool identical =
      ChunkFingerprint(reference->chunk) == ChunkFingerprint(grown->chunk);

  std::printf("\n-- elastic run: grow 2 -> 6 at the shuffle boundary "
              "(%zu rows) --\n", rows);
  std::printf("%-24s %10s\n", "fragment", "width");
  for (size_t i = 0; i < usage.fragments.size(); ++i) {
    std::printf("  #%-21zu %10zu  (%.2fms)\n", i, usage.fragments[i].workers,
                usage.fragments[i].seconds * 1e3);
  }
  std::printf("wall %.2fms, worker-seconds %.5f (min %zu, peak %zu, "
              "resizes %zu, spun up %zu in %.2fms)\n",
              usage.wall_seconds * 1e3, usage.worker_seconds,
              usage.min_workers, usage.peak_workers, usage.resizes,
              usage.workers_spun_up, usage.spinup_seconds * 1e3);
  const bool billed_in_bounds =
      usage.worker_seconds >=
          usage.wall_seconds * static_cast<double>(usage.min_workers) -
              1e-9 &&
      usage.worker_seconds <=
          usage.wall_seconds * static_cast<double>(usage.peak_workers) +
              1e-9;
  ShardedEngine fixed(4);
  auto fixed_run = fixed.Execute(planned->plan.get());
  const WorkerUsage fixed_usage = fixed.last_usage();
  const bool fixed_exact =
      fixed_run.ok() &&
      std::abs(fixed_usage.worker_seconds - fixed_usage.wall_seconds * 4.0) <=
          fixed_usage.wall_seconds * 4.0 * 1e-6 + 1e-9;
  std::printf("fixed 4-worker run bills wall x 4 exactly: %s; elastic bill "
              "within [wall x min, wall x peak]: %s\n",
              fixed_exact ? "yes" : "NO", billed_in_bounds ? "yes" : "NO");
  const bool claim_a = identical && usage.resizes == 1 &&
                       usage.peak_workers == 6 && usage.min_workers == 2 &&
                       billed_in_bounds && fixed_exact;
  std::printf("bit-identical to LocalEngine across the resize: %s\n",
              identical ? "yes" : "NO");

  // ---- (b) the cost model gates a greedy policy ------------------------
  // Same query, same greedy proposal (always "grow to 8"); the only thing
  // that changes between the two runs is the calibrated spin-up price.
  std::printf("\n-- controller pricing: greedy policy vs the cost model --\n");
  GreedyPolicy greedy;
  ElasticControllerOptions copts;
  copts.max_workers = 8;

  HardwareCalibration cheap_hw;
  cheap_hw.worker_spinup_seconds = 0.0;  // resizes are free: accept
  InstanceType node = PricingCatalog::Default().default_node();
  CostEstimator cheap_est(&cheap_hw, &node);
  ElasticController accepter(&cheap_est, &greedy, copts);
  accepter.BeginQuery(&planned->pipelines, &planned->volumes,
                      UserConstraint(), planned->estimate.latency, 2);
  ShardedEngine cheap_engine(2);
  cheap_engine.SetResizer(
      [&accepter](const FragmentBoundary& b) { return accepter.Decide(b); });
  auto cheap_run = cheap_engine.Execute(planned->plan.get());

  HardwareCalibration dear_hw;
  dear_hw.worker_spinup_seconds = 1e6;  // spin-up dwarfs any saving: decline
  CostEstimator dear_est(&dear_hw, &node);
  ElasticController decliner(&dear_est, &greedy, copts);
  decliner.BeginQuery(&planned->pipelines, &planned->volumes,
                      UserConstraint(), planned->estimate.latency, 2);
  ShardedEngine dear_engine(2);
  dear_engine.SetResizer(
      [&decliner](const FragmentBoundary& b) { return decliner.Decide(b); });
  auto dear_run = dear_engine.Execute(planned->plan.get());

  auto print_decisions = [](const char* label,
                            const ElasticController& controller) {
    for (const auto& d : controller.decisions()) {
      std::printf("  [%s] boundary %d: %zu -> proposed %zu, applied %zu "
                  "(%s; overhead %.4fs, predicted saving %.4fs, $%+.2e)\n",
                  label, d.boundary, d.from, d.proposed, d.applied,
                  d.reason.c_str(), d.resize_overhead_seconds,
                  d.predicted_saving_seconds, d.dollar_delta);
    }
  };
  print_decisions("free spin-up", accepter);
  print_decisions("dear spin-up", decliner);
  const bool accepted = cheap_run.ok() && accepter.resizes_applied() >= 1;
  bool declined_net_negative =
      dear_run.ok() && decliner.resizes_applied() == 0 &&
      decliner.resizes_declined() >= 1;
  for (const auto& d : decliner.decisions()) {
    if (d.declined && d.reason.find("net-negative") == std::string::npos) {
      declined_net_negative = false;
    }
  }
  const bool same_rows =
      cheap_run.ok() && dear_run.ok() &&
      ChunkFingerprint(cheap_run->chunk) == ChunkFingerprint(dear_run->chunk) &&
      ChunkFingerprint(cheap_run->chunk) == ChunkFingerprint(reference->chunk);
  std::printf("free spin-up accepted a grow: %s; dear spin-up declined every "
              "grow as net-negative: %s; results identical throughout: %s\n",
              accepted ? "yes" : "NO", declined_net_negative ? "yes" : "NO",
              same_rows ? "yes" : "NO");
  const bool claim_b = accepted && declined_net_negative && same_rows;

  // ---- (c) facade billing + simulator parity (informational) -----------
  if (!smoke) {
    DatabaseOptions eopts;
    eopts.enable_calibration = false;
    eopts.enable_elastic = true;
    Database elastic_db(eopts);
    elastic_db.meta()->RegisterTable(*db->meta()->GetTable("sales"));
    elastic_db.meta()->AnalyzeAll();
    auto run = elastic_db.ExecuteSql(sql, UserConstraint().WithWorkers(3));
    if (run.ok()) {
      std::printf("\n-- facade elastic run at 3 workers --\n");
      std::printf("billed $%.3e for %.5f worker-seconds (%zu boundary "
                  "decisions, %zu resizes); meter total $%.3e\n",
                  run->billed_dollars, run->usage.worker_seconds,
                  run->elastic.size(), run->usage.resizes,
                  elastic_db.billing_snapshot().total());
    }
    auto prepared = db->Prepare(sql, UserConstraint());
    if (prepared.ok()) {
      StaticPolicy static_policy;
      ElasticParity parity =
          CheckElasticParity(*prepared, *db->simulator(), &static_policy,
                             UserConstraint(), usage);
      std::printf("simulator parity: sim %.2f machine-s / %d resizes vs real "
                  "%.5f worker-s / %zu resizes (ratio %.1f, direction "
                  "agrees: %s)\n",
                  parity.simulated_machine_seconds, parity.simulated_resizes,
                  parity.real_machine_seconds, parity.real_resizes,
                  parity.machine_seconds_ratio,
                  parity.resize_direction_agrees ? "yes" : "no");
    }
  }

  std::printf("\nclaims: (a) grow 2->6 bit-identical + billed as held: %s; "
              "(b) cost model accepts/declines by price: %s\n",
              claim_a ? "PASS" : "FAIL", claim_b ? "PASS" : "FAIL");
  return claim_a && claim_b ? 0 : 1;
}

}  // namespace costdb

int main(int argc, char** argv) { return costdb::Main(argc, argv); }
