// E16 — the multi-tenant front door under tenant stress:
//
//   part 1  deterministic flood: N equal-weight tenants pre-submit the
//           same seeded schedule into a one-slot admission controller
//           held closed by a blocker, then the queue drains. Because the
//           whole backlog exists before the first admission, the
//           admission log is a pure function of the schedule: the
//           fair-share spread across tenants over the first half of the
//           log gates at 1.0-ish (<= 1.25), the shared result cache must
//           execute each distinct statement exactly once (single
//           flight), and every tenant's session ledger must equal its
//           entry in Database::tenant_billing to the cent (zero
//           cross-tenant budget bleed under tiered volume pricing).
//
//   part 2  closed loop: T tenants x S sessions each drive an
//           interactive/batch mix (every 4th query is a star join
//           submitted as query_class "batch"), next query only after the
//           previous completed. Reports p50/p99 per class, the
//           result-cache hit rate, and the completed-work spread across
//           tenants; gates that the per-class p99s stay under generous
//           absolute bounds (the starvation guard keeps batch bounded
//           under the interactive flood) and that budget conservation
//           also holds per tenant when M sessions share one tenant id.
//
// `--smoke` runs the tiny configuration and exits 1 if any gate fails —
// the acceptance checks for the multi-tenant front door, wired into CI.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <future>
#include <map>
#include <mutex>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "service/session.h"

using namespace costdb;
using namespace costdb::bench;

namespace {

double ElapsedSeconds(std::chrono::steady_clock::time_point a,
                      std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  size_t idx = static_cast<size_t>(p * double(v.size() - 1));
  return v[idx];
}

std::unique_ptr<Database> MakeDb(double scale, size_t cap) {
  DatabaseOptions opts;
  opts.exec_threads = 2;
  opts.enable_calibration = false;  // fixed estimates: schedule-exact flood
  opts.enable_result_cache = true;
  opts.admission.max_concurrent = cap;
  opts.admission.record_admissions = true;
  // Tiered volume pricing so billing exercises the cumulative fold (the
  // rates are arbitrary; the gates check conservation, not magnitude).
  opts.pricing.compute_second_tiers = {{0.01, 0.002}, {1.0, 0.001}};
  auto db = std::make_unique<Database>(opts);
  SsbOptions data;
  data.scale = scale;
  data.row_group_size = 256;
  LoadSsb(db->meta(), data);
  return db;
}

std::string TenantName(int i) { return StrFormat("tenant%d", i); }

/// The seeded statement mix. Every tenant replays the *same* schedule, so
/// equal-weight fair share should interleave them almost perfectly and
/// every statement past the first tenant's is a result-cache hit.
std::vector<std::string> SeededSchedule(int queries, uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> quantity(1, 6);
  std::uniform_int_distribution<int> discount(0, 3);
  std::vector<std::string> out;
  for (int i = 0; i < queries; ++i) {
    switch (i % 3) {
      case 0:
        out.push_back(StrFormat(
            "SELECT count(*) AS n FROM lineorder WHERE lo_quantity < %d",
            5 * quantity(rng)));
        break;
      case 1:
        out.push_back(StrFormat(
            "SELECT sum(lo_revenue) AS rev FROM lineorder "
            "WHERE lo_discount BETWEEN %d AND %d",
            discount(rng), 4 + discount(rng)));
        break;
      default:
        out.push_back("SELECT count(*) AS n FROM supplier");
        break;
    }
  }
  return out;
}

struct FloodResult {
  int tenants = 0;
  double fairness_spread = 0.0;       // first-half max/min admissions
  long long distinct_statements = 0;  // distinct result-cache keys
  long long cache_misses = 0;
  long long cache_hits = 0;
  bool single_execution = false;  // misses == distinct statements
  bool bleed_zero = false;        // per-tenant ledger == tenant bill
  bool all_ok = false;            // every query returned rows
  double wall_seconds = 0.0;
};

FloodResult RunFlood(double scale, int tenants, int per_tenant) {
  FloodResult out;
  out.tenants = tenants;
  auto db = MakeDb(scale, /*cap=*/1);

  // Hold the only slot until the whole backlog is queued: the admission
  // order then depends on the schedule alone, not on submission timing.
  std::promise<void> release;
  auto gate = std::shared_future<void>(release.get_future());
  AdmissionController::Submission blocker;
  blocker.est_latency = 0.0;
  blocker.run = [gate] { gate.wait(); };
  auto blocker_ticket = db->admission()->Submit(std::move(blocker));
  while (db->admission()->state(blocker_ticket) !=
         AdmissionController::Ticket::State::kRunning) {
    std::this_thread::yield();
  }

  const std::vector<std::string> schedule = SeededSchedule(per_tenant, 1234);
  std::set<std::string> distinct(schedule.begin(), schedule.end());
  out.distinct_statements = static_cast<long long>(distinct.size());

  std::vector<std::unique_ptr<Session>> sessions;
  std::vector<QueryHandlePtr> handles;
  for (int t = 0; t < tenants; ++t) {
    SessionOptions so;
    so.tenant_id = TenantName(t);
    sessions.push_back(std::make_unique<Session>(db.get(), so));
    for (const std::string& sql : schedule) {
      auto handle = sessions.back()->Submit(sql);
      if (!handle.ok()) {
        std::printf("flood submit failed: %s\n",
                    handle.status().ToString().c_str());
        release.set_value();
        return out;
      }
      handles.push_back(std::move(*handle));
    }
  }

  auto t0 = std::chrono::steady_clock::now();
  release.set_value();
  out.all_ok = true;
  for (auto& handle : handles) {
    auto taken = handle->Take();
    if (!taken.ok()) {
      std::printf("flood query failed: %s\n",
                  taken.status().ToString().c_str());
      out.all_ok = false;
    }
  }
  out.wall_seconds = ElapsedSeconds(t0, std::chrono::steady_clock::now());

  // Fairness over the first half of the log — while every tenant still
  // has backlog, so the tail (some tenants done) cannot dilute it.
  std::map<std::string, size_t> admitted;
  const auto log = db->admission()->admission_log();
  size_t counted = 0;
  const size_t window = (log.size() - 1) / 2;  // minus the blocker
  for (const auto& e : log) {
    if (e.tenant.empty()) continue;  // the blocker
    if (counted++ >= window) break;
    ++admitted[e.tenant];
  }
  size_t min_admitted = SIZE_MAX, max_admitted = 0;
  for (const auto& [tenant, n] : admitted) {
    min_admitted = std::min(min_admitted, n);
    max_admitted = std::max(max_admitted, n);
  }
  out.fairness_spread =
      min_admitted == 0 || admitted.size() < size_t(tenants)
          ? std::numeric_limits<double>::infinity()
          : double(max_admitted) / double(min_admitted);

  auto cache = db->result_cache_stats();
  out.cache_misses = static_cast<long long>(cache.misses);
  out.cache_hits = static_cast<long long>(cache.hits);
  out.single_execution = out.cache_misses == out.distinct_statements;

  // Budget conservation: each tenant's session ledger must equal its
  // tenant bill exactly — dollars never leak across tenants.
  out.bleed_zero = true;
  const auto billing = db->tenant_billing();
  for (int t = 0; t < tenants; ++t) {
    auto it = billing.find(TenantName(t));
    if (it == billing.end() ||
        std::abs(sessions[t]->spent() - it->second.dollars) > 1e-9) {
      out.bleed_zero = false;
    }
  }
  return out;
}

struct LoopResult {
  std::vector<double> interactive;  // per-query seconds
  std::vector<double> batch;
  double fairness_spread = 0.0;  // completed work across tenants
  double cache_hit_rate = 0.0;
  bool bleed_zero = false;
  bool all_ok = false;
  double wall_seconds = 0.0;
};

LoopResult RunClosedLoop(double scale, int tenants, int sessions_per_tenant,
                         int iters) {
  LoopResult out;
  auto db = MakeDb(scale, /*cap=*/2);

  std::mutex mu;
  std::map<std::string, Dollars> spent_by_tenant;
  bool all_ok = true;
  auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> drivers;
  for (int t = 0; t < tenants; ++t) {
    for (int s = 0; s < sessions_per_tenant; ++s) {
      drivers.emplace_back([&, t, s] {
        SessionOptions so;
        so.tenant_id = TenantName(t);
        Session session(db.get(), so);
        std::mt19937 rng(1000u + 31u * t + s);
        std::uniform_int_distribution<int> quantity(1, 6);
        std::vector<double> inter, batch;
        bool ok = true;
        for (int i = 0; i < iters; ++i) {
          const bool is_batch = i % 4 == 3;
          Session::SubmitOptions sub;
          sub.query_class = is_batch ? "batch" : "interactive";
          const std::string sql =
              is_batch ? FindQuery("Q3").sql
                       : StrFormat("SELECT count(*) AS n FROM lineorder "
                                   "WHERE lo_quantity < %d",
                                   5 * quantity(rng));
          auto q0 = std::chrono::steady_clock::now();
          auto handle = session.Submit(sql, sub);
          if (!handle.ok()) {
            ok = false;
            continue;
          }
          auto taken = (*handle)->Take();
          auto q1 = std::chrono::steady_clock::now();
          if (!taken.ok()) {
            ok = false;
            continue;
          }
          (is_batch ? batch : inter).push_back(ElapsedSeconds(q0, q1));
        }
        std::lock_guard<std::mutex> lock(mu);
        out.interactive.insert(out.interactive.end(), inter.begin(),
                               inter.end());
        out.batch.insert(out.batch.end(), batch.begin(), batch.end());
        spent_by_tenant[so.tenant_id] += session.spent();
        all_ok = all_ok && ok;
      });
    }
  }
  for (auto& d : drivers) d.join();
  out.wall_seconds = ElapsedSeconds(t0, std::chrono::steady_clock::now());
  out.all_ok = all_ok;

  // Equal-weight tenants driving identical closed loops should complete
  // near-identical work.
  auto stats = db->admission()->tenant_stats();
  size_t min_done = SIZE_MAX, max_done = 0;
  for (const auto& [tenant, ts] : stats) {
    min_done = std::min(min_done, ts.completed);
    max_done = std::max(max_done, ts.completed);
  }
  out.fairness_spread =
      min_done == 0 ? std::numeric_limits<double>::infinity()
                    : double(max_done) / double(min_done);

  auto cache = db->result_cache_stats();
  const double lookups = double(cache.hits + cache.misses);
  out.cache_hit_rate = lookups == 0.0 ? 0.0 : double(cache.hits) / lookups;

  // M sessions of one tenant settle into one bill; the sum of their
  // ledgers must still equal it exactly.
  out.bleed_zero = true;
  const auto billing = db->tenant_billing();
  for (const auto& [tenant, spent] : spent_by_tenant) {
    auto it = billing.find(tenant);
    if (it == billing.end() || std::abs(spent - it->second.dollars) > 1e-9) {
      out.bleed_zero = false;
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  int tenants = 4;
  int flood_per_tenant = 40;
  int loop_sessions = 3;
  int loop_iters = 40;
  double scale = 0.02;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      tenants = 3;
      flood_per_tenant = 12;
      loop_sessions = 2;
      loop_iters = 12;
      scale = 0.01;
      smoke = true;
    } else if (std::strcmp(argv[i], "--tenants") == 0 && i + 1 < argc) {
      tenants = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--per-tenant") == 0 && i + 1 < argc) {
      flood_per_tenant = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--sessions") == 0 && i + 1 < argc) {
      loop_sessions = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--iters") == 0 && i + 1 < argc) {
      loop_iters = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--scale") == 0 && i + 1 < argc) {
      scale = std::atof(argv[++i]);
    }
  }

  PrintHeader("E16 — multi-tenant front door under tenant stress",
              "Weighted fair share interleaves tenants, the result cache "
              "single-flights hot statements, and tiered per-tenant bills "
              "conserve every dollar.");

  std::printf("\nflood: %d tenants x %d queries, one admission slot\n",
              tenants, flood_per_tenant);
  FloodResult flood = RunFlood(scale, tenants, flood_per_tenant);
  TablePrinter ft({"metric", "value"});
  ft.AddRow({"fairness spread (first half)",
             StrFormat("%.3f", flood.fairness_spread)});
  ft.AddRow({"distinct statements",
             StrFormat("%lld", flood.distinct_statements)});
  ft.AddRow({"result-cache misses", StrFormat("%lld", flood.cache_misses)});
  ft.AddRow({"result-cache hits", StrFormat("%lld", flood.cache_hits)});
  ft.AddRow({"single execution per statement",
             flood.single_execution ? "yes" : "NO"});
  ft.AddRow({"zero budget bleed", flood.bleed_zero ? "yes" : "NO"});
  ft.AddRow({"drain wall", StrFormat("%.2f s", flood.wall_seconds)});
  std::printf("%s", ft.ToString().c_str());

  std::printf(
      "\nclosed loop: %d tenants x %d sessions x %d queries (cap=2), "
      "every 4th a star join in class \"batch\"\n",
      tenants, loop_sessions, loop_iters);
  LoopResult loop =
      RunClosedLoop(scale, tenants, loop_sessions, loop_iters);
  const double inter_p50 = Percentile(loop.interactive, 0.5);
  const double inter_p99 = Percentile(loop.interactive, 0.99);
  const double batch_p50 = Percentile(loop.batch, 0.5);
  const double batch_p99 = Percentile(loop.batch, 0.99);
  TablePrinter lt({"class", "queries", "p50", "p99"});
  lt.AddRow({"interactive", StrFormat("%zu", loop.interactive.size()),
             StrFormat("%.2f ms", 1e3 * inter_p50),
             StrFormat("%.2f ms", 1e3 * inter_p99)});
  lt.AddRow({"batch", StrFormat("%zu", loop.batch.size()),
             StrFormat("%.2f ms", 1e3 * batch_p50),
             StrFormat("%.2f ms", 1e3 * batch_p99)});
  std::printf("%s", lt.ToString().c_str());
  std::printf(
      "completed-work spread %.3f, cache hit rate %.2f, budget "
      "conserved: %s\n",
      loop.fairness_spread, loop.cache_hit_rate,
      loop.bleed_zero ? "yes" : "NO");

  // Generous absolute bounds: the gate catches a scheduler that starves a
  // class (seconds of queue wait), not machine-speed variance.
  const bool fairness_ok =
      flood.fairness_spread <= 1.25 && loop.fairness_spread <= 1.25;
  const bool p99_ok = loop.all_ok && inter_p99 < 2.0 && batch_p99 < 15.0;
  const bool bleed_zero = flood.bleed_zero && loop.bleed_zero;
  const bool cache_ok = flood.single_execution && loop.cache_hit_rate > 0.0;

  // Accepts --json <path> (parsed by JsonPathFromArgs). The literal flag
  // must appear in this TU: the CI smoke loop greps each bench source for
  // "--json" to decide whether to request a snapshot, and this bench's
  // snapshot is a hard acceptance gate.
  const std::string json_path = JsonPathFromArgs(argc, argv);
  if (!json_path.empty()) {
    BenchJson json;
    json.SetInt("gate_tenants", tenants);
    json.Set("gate_flood_fairness_spread", flood.fairness_spread);
    json.SetBool("gate_fairness_ok", fairness_ok);
    json.SetInt("gate_distinct_statements", flood.distinct_statements);
    json.SetBool("gate_cache_single_execution", flood.single_execution);
    json.SetBool("gate_bleed_zero", bleed_zero);
    json.SetBool("gate_p99_ok", p99_ok);
    json.SetBool("gate_cache_hits_nonzero", loop.cache_hit_rate > 0.0);
    json.Set("flood_wall_s", flood.wall_seconds);
    json.SetInt("flood_cache_hits", flood.cache_hits);
    json.Set("loop_wall_s", loop.wall_seconds);
    json.Set("loop_interactive_p50_ms", 1e3 * inter_p50);
    json.Set("loop_interactive_p99_ms", 1e3 * inter_p99);
    json.Set("loop_batch_p50_ms", 1e3 * batch_p50);
    json.Set("loop_batch_p99_ms", 1e3 * batch_p99);
    json.Set("loop_fairness_spread", loop.fairness_spread);
    json.Set("loop_cache_hit_rate", loop.cache_hit_rate);
    if (!json.WriteFile(json_path)) return 1;
  }

  if (smoke) {
    std::printf(
        "\nsmoke: fairness: %s; single-flight cache: %s; budget "
        "conserved: %s; p99 bounded: %s\n",
        fairness_ok ? "yes" : "NO", cache_ok ? "yes" : "NO",
        bleed_zero ? "yes" : "NO", p99_ok ? "yes" : "NO");
    if (!flood.all_ok || !fairness_ok || !cache_ok || !bleed_zero ||
        !p99_ok) {
      return 1;
    }
  }
  return 0;
}
