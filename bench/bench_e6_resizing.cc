// E6 — paper Section 3.3: under cardinality misestimation, pipeline-
// granular runtime resizing (the DOP monitor) keeps the SLA at lower cost
// than (a) trusting the static plan, (b) Jockey-style whole-cluster
// interval scaling, (c) BigQuery-style stage-boundary scaling.
// bench-baseline: none — this bench emits no JSON snapshot; its
// acceptance gates are its PASS/FAIL exit code, not a committed
// ci/bench_baselines/ entry (see the drift guard in ci/build_and_test.sh).
#include "bench_util.h"

using namespace costdb;
using namespace costdb::bench;

int main() {
  PrintHeader("E6: runtime resizing policies under misestimation",
              "Claim (S3.3): correct deviations at pipeline granularity;\n"
              "whole-cluster scaling over-pays, stage boundaries pay a\n"
              "materialization tax, static planning misses the SLA.");
  BenchContext ctx = BenchContext::Make();
  const std::string sql = FindQuery("Q5").sql;

  // Fixed user SLA: half of the query's single-node truth latency, so the
  // planner must provision real parallelism. Misestimation then produces
  // under-provisioning (error < 1) or over-provisioning (error > 1).
  const UserConstraint sla = UserConstraint::Sla(16.0);
  for (double error : {0.0625, 0.25, 1.0, 4.0, 16.0}) {
    // Plan with distorted beliefs, execute against the truth.
    ctx.meta.SetStatsErrorFactor("lineorder", error);
    auto prepared = ctx.Prepare(sql, sla);
    ctx.meta.SetStatsErrorFactor("lineorder", 1.0);
    if (!prepared.ok()) continue;
    // Re-derive the truth with honest statistics.
    CardinalityEstimator truth(&ctx.meta, &prepared->query.relations, true);
    prepared->truth = ComputeVolumes(prepared->planned.plan.get(), truth);

    TablePrinter t({"policy", "latency", "SLA", "met", "bill", "resizes"});
    std::vector<std::unique_ptr<ResizePolicy>> policies;
    policies.emplace_back(new StaticPolicy());
    policies.emplace_back(new PipelineDopMonitor());
    policies.emplace_back(new WholeClusterIntervalPolicy(2.0));
    policies.emplace_back(new StageBoundaryPolicy(2.0));
    for (auto& policy : policies) {
      SimResult r =
          SimulateQuery(*prepared, *ctx.simulator, policy.get(), sla);
      t.AddRow({policy->name(), FormatSeconds(r.latency),
                FormatSeconds(sla.latency_sla), r.sla_met ? "yes" : "NO",
                FormatDollars(r.cost), std::to_string(r.total_resizes)});
    }
    std::printf("\ncardinality error x%.4g (believed/true):\n%s", error,
                t.ToString().c_str());
  }
  return 0;
}
