// E14: Partitioned multi-worker execution.
//
// Claims demonstrated (and gated — exit 1 on violation):
//  (a) a co-partitioned join moves strictly fewer bytes than the same
//      join planned as a repartition shuffle, and the optimizer picks the
//      co-partitioned plan on its own (kLocal exchanges, cheaper estimate);
//  (b) scan+aggregate scales: 4 workers finish in < 0.5x the 1-worker
//      wall time, with results bit-identical across every worker count
//      (the scaling curve 1..8 is printed in full mode);
//  (c) the shuffle-term calibration folds measured exchange times back in
//      and the simulator's scaling prediction agrees with reality.
//
// `--smoke` runs a smaller configuration and gates (a) + (b) for CI;
// `--json <path>` snapshots the gates plus the per-exchange-kind
// breakdown (shuffle/broadcast/gather counts, rows, bytes) for the CI
// baseline comparator.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

#include "bench_util.h"
#include "common/rng.h"
#include "exec/sharded_engine.h"
#include "sim/harness.h"
#include "storage/partition.h"

namespace costdb {
namespace {

constexpr size_t kParts = 8;

struct Tables {
  DataChunk sales;
  DataChunk cust;
};

Tables MakeData(size_t sales_rows, size_t cust_rows) {
  Rng rng(7);
  Tables t;
  t.sales = DataChunk({LogicalType::kInt64, LogicalType::kInt64,
                       LogicalType::kInt64, LogicalType::kInt64,
                       LogicalType::kDouble});
  for (size_t i = 0; i < sales_rows; ++i) {
    t.sales.AppendRow({Value(static_cast<int64_t>(i)),
                       Value(rng.UniformInt(0, int64_t(cust_rows) - 1)),
                       Value(rng.UniformInt(0, 999)),
                       Value(rng.UniformInt(1, 10)),
                       Value(rng.Uniform(0.0, 1000.0))});
  }
  t.cust = DataChunk({LogicalType::kInt64, LogicalType::kVarchar,
                      LogicalType::kInt64});
  const char* regions[] = {"na", "emea", "apac", "latam", "anz"};
  for (size_t k = 0; k < cust_rows; ++k) {
    t.cust.AppendRow({Value(static_cast<int64_t>(k)),
                      Value(std::string(regions[k % 5])),
                      Value(rng.UniformInt(0, 99))});
  }
  return t;
}

std::unique_ptr<Database> MakeDb(const Tables& data, bool partitioned,
                                 bool force_shuffle) {
  DatabaseOptions opts;
  opts.enable_calibration = false;
  if (force_shuffle) {
    opts.optimizer.physical.enable_copartition = false;
    opts.optimizer.physical.broadcast_threshold_bytes = 0.0;
  }
  auto db = std::make_unique<Database>(opts);
  auto sales = std::make_shared<Table>(
      "sales", std::vector<ColumnDef>{{"sid", LogicalType::kInt64},
                                      {"cust", LogicalType::kInt64},
                                      {"grp", LogicalType::kInt64},
                                      {"qty", LogicalType::kInt64},
                                      {"price", LogicalType::kDouble}},
      8192);
  sales->Append(data.sales);
  auto cust = std::make_shared<Table>(
      "cust", std::vector<ColumnDef>{{"key", LogicalType::kInt64},
                                     {"region", LogicalType::kVarchar},
                                     {"score", LogicalType::kInt64}},
      8192);
  cust->Append(data.cust);
  if (partitioned) {
    auto s1 = PartitionTable(sales.get(), PartitionSpec::Hash("cust", kParts));
    auto s2 = PartitionTable(cust.get(), PartitionSpec::Hash("key", kParts));
    if (!s1.ok() || !s2.ok()) {
      std::fprintf(stderr, "partitioning failed\n");
      std::exit(1);
    }
  }
  db->meta()->RegisterTable(sales);
  db->meta()->RegisterTable(cust);
  db->meta()->AnalyzeAll();
  return db;
}

double BestOf(int runs, ShardedEngine* engine, const PhysicalPlan* plan,
              DataChunk* out) {
  double best = 1e18;
  for (int i = 0; i < runs; ++i) {
    auto t0 = std::chrono::steady_clock::now();
    auto r = engine->Execute(plan);
    auto t1 = std::chrono::steady_clock::now();
    if (!r.ok()) {
      std::fprintf(stderr, "execute failed: %s\n",
                   r.status().ToString().c_str());
      std::exit(1);
    }
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
    if (out != nullptr) *out = std::move(r->chunk);
  }
  return best;
}

std::string ChunkFingerprint(const DataChunk& chunk) {
  std::string all, key;
  for (size_t r = 0; r < chunk.num_rows(); ++r) {
    EncodeChunkKeyInto(chunk, chunk.num_columns(), r, &key);
    all += key;
    all += '\n';
  }
  return all;
}

}  // namespace

int Main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const std::string json_path = bench::JsonPathFromArgs(argc, argv);
  bench::PrintHeader(
      "E14: partitioned multi-worker execution (sharded engine)",
      "Co-partitioned joins move no join rows and win on bytes + estimate; "
      "scan+agg scales across workers with bit-identical results.");

  const size_t sales_rows = smoke ? 1'000'000 : 4'000'000;
  const size_t cust_rows = smoke ? 50'000 : 100'000;
  Tables data = MakeData(sales_rows, cust_rows);
  auto db_part = MakeDb(data, /*partitioned=*/true, /*force_shuffle=*/false);
  auto db_shuffle = MakeDb(data, /*partitioned=*/false, /*force_shuffle=*/true);

  // ---- (a) shuffle vs co-partition on the same join -------------------
  const std::string join_sql =
      "SELECT c.region, sum(s.qty) AS q FROM sales s JOIN cust c "
      "ON s.cust = c.key GROUP BY c.region";
  auto co_plan = db_part->PlanSql(join_sql, UserConstraint());
  auto sh_plan = db_shuffle->PlanSql(join_sql, UserConstraint());
  if (!co_plan.ok() || !sh_plan.ok()) {
    std::fprintf(stderr, "planning failed\n");
    return 1;
  }
  const bool picked_local =
      co_plan->plan->ToString().find("Exchange Local") != std::string::npos;
  const bool estimate_prefers =
      co_plan->estimate.latency <= sh_plan->estimate.latency &&
      co_plan->estimate.cost <= sh_plan->estimate.cost;

  ShardedEngine co_engine(4);
  DataChunk co_rows;
  double co_secs = BestOf(smoke ? 2 : 3, &co_engine, co_plan->plan.get(),
                          &co_rows);
  ExchangeStats co_stats = co_engine.last_exchange_stats();
  ShardedEngine sh_engine(4);
  DataChunk sh_rows;
  double sh_secs = BestOf(smoke ? 2 : 3, &sh_engine, sh_plan->plan.get(),
                          &sh_rows);
  ExchangeStats sh_stats = sh_engine.last_exchange_stats();

  std::printf("\n-- join strategies at 4 workers (%zu x %zu rows) --\n",
              sales_rows, cust_rows);
  std::printf("%-16s %12s %14s %12s %10s\n", "plan", "rows moved",
              "bytes moved", "exchanges", "wall");
  std::printf("%-16s %12zu %14.0f %12zu %9.1fms\n", "co-partitioned",
              co_stats.rows_moved(), co_stats.bytes_moved(),
              co_stats.exchanges(), co_secs * 1e3);
  std::printf("%-16s %12zu %14.0f %12zu %9.1fms\n", "shuffle",
              sh_stats.rows_moved(), sh_stats.bytes_moved(),
              sh_stats.exchanges(), sh_secs * 1e3);
  // Per-kind breakdown: which exchange kinds each strategy paid for. The
  // co-partitioned plan's movement is all partial-agg shuffle + the final
  // gather; the repartition plan additionally shuffles the probe side.
  std::printf("%-16s %-10s %8s %12s %14s\n", "plan", "kind", "count",
              "rows", "bytes");
  auto print_kind = [](const char* plan, const char* kind,
                       const ExchangeKindStats& ks) {
    std::printf("%-16s %-10s %8zu %12zu %14.0f\n", plan, kind, ks.count,
                ks.rows_moved, ks.bytes_moved);
  };
  print_kind("co-partitioned", "shuffle", co_stats.shuffle);
  print_kind("co-partitioned", "broadcast", co_stats.broadcast);
  print_kind("co-partitioned", "gather", co_stats.gather);
  print_kind("shuffle", "shuffle", sh_stats.shuffle);
  print_kind("shuffle", "broadcast", sh_stats.broadcast);
  print_kind("shuffle", "gather", sh_stats.gather);
  std::printf("optimizer picked co-partitioned plan: %s (estimate prefers: "
              "%s)\n",
              picked_local ? "yes" : "NO", estimate_prefers ? "yes" : "NO");
  const bool same_answer =
      ChunkFingerprint(co_rows) == ChunkFingerprint(sh_rows);
  const bool claim_a = picked_local && estimate_prefers && same_answer &&
                       co_stats.bytes_moved() < sh_stats.bytes_moved();

  // ---- (b) scaling curve on scan + aggregate --------------------------
  const std::string agg_sql =
      "SELECT grp, count(*) AS c, sum(qty) AS s FROM sales "
      "WHERE price > 100.0 GROUP BY grp";
  auto agg_plan = db_part->PlanSql(agg_sql, UserConstraint());
  if (!agg_plan.ok()) {
    std::fprintf(stderr, "agg planning failed\n");
    return 1;
  }
  std::printf("\n-- scan+agg scaling (%zu rows, best of %d) --\n", sales_rows,
              smoke ? 3 : 5);
  std::printf("%-8s %10s %9s %14s\n", "workers", "wall", "speedup",
              "result rows");
  double t1 = 0.0, t4 = 0.0;
  std::string fingerprint;
  bool identical = true;
  for (size_t w : {1u, 2u, 4u, 8u}) {
    ShardedEngine engine(w);
    DataChunk rows;
    double secs = BestOf(smoke ? 3 : 5, &engine, agg_plan->plan.get(), &rows);
    if (w == 1) t1 = secs;
    if (w == 4) t4 = secs;
    std::string fp = ChunkFingerprint(rows);
    if (fingerprint.empty()) {
      fingerprint = fp;
    } else if (fp != fingerprint) {
      identical = false;
    }
    std::printf("%-8zu %8.1fms %8.2fx %14zu\n", w, secs * 1e3,
                t1 / std::max(secs, 1e-9), rows.num_rows());
  }
  // The 0.5x wall-time gate needs parallel hardware; on a starved host
  // (CI containers are sometimes pinned to one core) the honest check is
  // that sharding costs bounded overhead while determinism still holds.
  const unsigned cores = std::thread::hardware_concurrency();
  bool claim_b;
  if (cores >= 4) {
    claim_b = identical && t4 < 0.5 * t1;
    std::printf("bit-identical across workers: %s; t4 < 0.5*t1: %s "
                "(t1 %.1fms, t4 %.1fms, %u cores)\n",
                identical ? "yes" : "NO", t4 < 0.5 * t1 ? "yes" : "NO",
                t1 * 1e3, t4 * 1e3, cores);
  } else {
    claim_b = identical && t4 < 1.5 * t1;
    std::printf("bit-identical across workers: %s; speedup gate SKIPPED "
                "(host has %u core(s)); overhead bound t4 < 1.5*t1: %s "
                "(t1 %.1fms, t4 %.1fms)\n",
                identical ? "yes" : "NO", cores,
                t4 < 1.5 * t1 ? "yes" : "NO", t1 * 1e3, t4 * 1e3);
  }

  // ---- (c) calibration + simulator parity (informational) -------------
  if (!smoke) {
    auto prepared = db_part->Prepare(agg_sql, UserConstraint());
    if (prepared.ok()) {
      ShardedEngine probe(4);
      DataChunk ignored;
      double sharded_secs =
          BestOf(2, &probe, prepared->planned.plan.get(), &ignored);
      ShardedParity parity = CheckShardedParity(
          *prepared, *db_part->estimator(), 4, t1, sharded_secs,
          probe.last_exchange_stats());
      std::printf("\n-- simulator parity at 4 workers --\n");
      std::printf("predicted latency 1w/4w: %.3fs / %.3fs; measured: "
                  "%.3fs / %.3fs; direction agrees: %s\n",
                  parity.predicted_single, parity.predicted_sharded,
                  parity.measured_single, parity.measured_sharded,
                  parity.scaling_direction_agrees ? "yes" : "no");
      std::printf("exchange bytes predicted/measured: %.0f / %.0f\n",
                  parity.predicted_exchange_bytes,
                  parity.measured_exchange_bytes);
    }
    DatabaseOptions cal_opts;
    Database cal_db(cal_opts);
    cal_db.meta()->RegisterTable(*db_part->meta()->GetTable("sales"));
    cal_db.meta()->RegisterTable(*db_part->meta()->GetTable("cust"));
    cal_db.meta()->AnalyzeAll();
    std::printf("\n-- shuffle-term calibration over repeated runs --\n");
    for (int round = 0; round < 4; ++round) {
      auto r = cal_db.ExecuteSql(agg_sql, UserConstraint().WithWorkers(4));
      if (!r.ok()) break;
      std::printf("round %d: q-error %.2f -> %.2f (scale %.3f, shuffle bw "
                  "%.2f GiB/s)\n",
                  round, r->calibration.q_error_before,
                  r->calibration.q_error_after, r->calibration.applied_scale,
                  cal_db.hardware()->shuffle_gibps);
    }
  }

  std::printf("\nclaims: (a) co-partition wins bytes + picked: %s; "
              "(b) scaling + determinism: %s\n",
              claim_a ? "PASS" : "FAIL", claim_b ? "PASS" : "FAIL");

  if (!json_path.empty()) {
    bench::BenchJson json;
    json.SetBool("gate_claim_a", claim_a);
    json.SetBool("gate_claim_b_identical", identical);
    // Exchange movement is deterministic for the fixed seed + worker
    // count, so the per-kind breakdown gates; wall times only trend.
    auto set_kind = [&json](const std::string& prefix,
                            const ExchangeKindStats& ks) {
      json.SetInt("gate_" + prefix + "_count",
                  static_cast<long long>(ks.count));
      json.SetInt("gate_" + prefix + "_rows",
                  static_cast<long long>(ks.rows_moved));
      json.Set("gate_" + prefix + "_bytes", ks.bytes_moved);
    };
    set_kind("co_shuffle", co_stats.shuffle);
    set_kind("co_broadcast", co_stats.broadcast);
    set_kind("co_gather", co_stats.gather);
    set_kind("sh_shuffle", sh_stats.shuffle);
    set_kind("sh_broadcast", sh_stats.broadcast);
    set_kind("sh_gather", sh_stats.gather);
    json.Set("co_wall_seconds", co_secs);
    json.Set("sh_wall_seconds", sh_secs);
    json.Set("agg_wall_1w_seconds", t1);
    json.Set("agg_wall_4w_seconds", t4);
    if (!json.WriteFile(json_path)) return 1;
  }
  return claim_a && claim_b ? 0 : 1;
}

}  // namespace costdb

int main(int argc, char** argv) { return costdb::Main(argc, argv); }
