// Microbenchmarks (google-benchmark) for the hot planning-path pieces the
// paper requires to be lightweight: cost-estimator invocations, DOP
// planning, and full bi-objective optimization.
// bench-baseline: none — this bench emits no JSON snapshot; its
// acceptance gates are its PASS/FAIL exit code, not a committed
// ci/bench_baselines/ entry (see the drift guard in ci/build_and_test.sh).
#include <benchmark/benchmark.h>

#include "bench_util.h"

using namespace costdb;
using namespace costdb::bench;

namespace {

BenchContext* Ctx() {
  static BenchContext* ctx = [] {
    auto* c = new BenchContext(BenchContext::Make());
    return c;
  }();
  return ctx;
}

PreparedQuery* PreparedQ7() {
  static PreparedQuery* prepared = [] {
    auto p = Ctx()->Prepare(FindQuery("Q7").sql, UserConstraint::Sla(1e9));
    return new PreparedQuery(std::move(*p));
  }();
  return prepared;
}

void BM_EstimatePlan(benchmark::State& state) {
  auto* p = PreparedQ7();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Ctx()->estimator->EstimatePlan(
        p->planned.pipelines, p->planned.dops, p->planned.volumes));
  }
}
BENCHMARK(BM_EstimatePlan);

void BM_PipelineDuration(benchmark::State& state) {
  auto* p = PreparedQ7();
  const Pipeline& pipeline = p->planned.pipelines.pipelines.back();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Ctx()->estimator->PipelineDuration(pipeline, 8, p->planned.volumes));
  }
}
BENCHMARK(BM_PipelineDuration);

void BM_DopPlanning(benchmark::State& state) {
  auto* p = PreparedQ7();
  DopPlanner planner(Ctx()->estimator);
  for (auto _ : state) {
    benchmark::DoNotOptimize(planner.Plan(p->planned.pipelines,
                                          p->planned.volumes,
                                          UserConstraint::Sla(10.0)));
  }
}
BENCHMARK(BM_DopPlanning);

void BM_FullBiObjectiveOptimize(benchmark::State& state) {
  for (auto _ : state) {
    auto planned = Ctx()->optimizer->PlanSql(FindQuery("Q7").sql,
                                             UserConstraint::Sla(10.0));
    benchmark::DoNotOptimize(planned);
  }
}
BENCHMARK(BM_FullBiObjectiveOptimize);

void BM_SqlParseBind(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(Ctx()->db->BindSql(FindQuery("Q8").sql));
  }
}
BENCHMARK(BM_SqlParseBind);

}  // namespace

BENCHMARK_MAIN();
