// E12 — vectorized execution microbench: the same selective SSB filter
// scan three ways over lineorder row groups.
//
//   scalar      row-at-a-time reference interpreter (boxed Values), every
//               row group touched — what the engine hot path looked like
//               before vectorization.
//   vectorized  selection-vector kernels over the flat column payloads,
//               every row group touched.
//   pruned      vectorized kernels behind zone-map morsel skipping — row
//               groups whose min/max cannot satisfy the predicate are
//               never read.
//
// All three must select the same rows (checked); the interesting outputs
// are the speedups and the fraction of morsels the zone maps skip. This
// bench probes the kernel layer directly (Expr + Evaluator + Table, the
// same surface the unit tests use); end-to-end SQL still enters through
// the Database facade as ROADMAP.md requires.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "bench_util.h"
#include "exec/evaluator.h"

using namespace costdb;
using namespace costdb::bench;

namespace {

double ElapsedSeconds(std::chrono::steady_clock::time_point a,
               std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

struct PhaseResult {
  double seconds = 0.0;
  int64_t rows_selected = 0;
  double revenue = 0.0;  // sum over selection, so the work can't be elided
  size_t morsels_touched = 0;
  size_t morsels_total = 0;
};

}  // namespace

int main(int argc, char** argv) {
  double scale = 0.2;
  int iters = 5;
  bool smoke = false;  // smoke mode checks wiring + parity, not wall clock
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      scale = 0.02;
      iters = 1;
      smoke = true;
    } else if (std::strcmp(argv[i], "--iters") == 0 && i + 1 < argc) {
      iters = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--scale") == 0 && i + 1 < argc) {
      scale = std::atof(argv[++i]);
    }
  }

  PrintHeader("E12: vectorized scan/filter kernels",
              "Selective SSB filter scan: scalar reference interpreter vs\n"
              "selection-vector kernels vs kernels + zone-map pruning.");

  MetadataService meta;
  SsbOptions opts;
  opts.scale = scale;
  opts.row_group_size = 4096;
  LoadSsb(&meta, opts);
  auto table = meta.GetTable("lineorder").value();
  const int64_t rows = static_cast<int64_t>(table->num_rows());

  // SSB Q1-flavored predicate. lo_orderkey is the insertion-ordered key,
  // so its zone maps are tight and the first conjunct prunes ~90% of the
  // row groups; the discount/quantity conjuncts do per-row work on the
  // survivors.
  const int64_t key_cutoff = rows / 10;
  auto col = [&](const char* name) {
    return Expr::MakeColumn(name, LogicalType::kInt64);
  };
  auto lit = [](int64_t v) {
    return Expr::MakeConstant(Value(v), LogicalType::kInt64);
  };
  ExprPtr predicate = Expr::MakeAnd({
      Expr::MakeCompare(CompareOp::kLt, col("lo_orderkey"), lit(key_cutoff)),
      Expr::MakeCompare(CompareOp::kGe, col("lo_discount"), lit(1)),
      Expr::MakeCompare(CompareOp::kLe, col("lo_discount"), lit(3)),
      Expr::MakeCompare(CompareOp::kLt, col("lo_quantity"), lit(25)),
  });
  std::vector<ExprPtr> conjuncts;
  SplitConjuncts(predicate, &conjuncts);

  std::vector<std::string> schema;
  for (const auto& c : table->columns()) schema.push_back(c.name);
  Evaluator ev(&schema);
  const size_t revenue_idx = *table->ColumnIndex("lo_revenue");

  auto sum_selected = [&](const ColumnVector& rev, const SelectionVector& sel,
                          PhaseResult* r) {
    for (uint32_t i : sel) r->revenue += rev.GetDouble(i);
    r->rows_selected += static_cast<int64_t>(sel.size());
  };

  auto run_phase = [&](int mode) {  // 0 scalar, 1 vectorized, 2 pruned
    PhaseResult r;
    auto t0 = std::chrono::steady_clock::now();
    for (int it = 0; it < iters; ++it) {
      r.rows_selected = 0;
      r.revenue = 0.0;
      r.morsels_touched = 0;
      r.morsels_total = 0;
      for (const auto& group : table->row_groups()) {
        ++r.morsels_total;
        if (mode == 2) {
          bool prunable = false;
          for (const auto& f : conjuncts) {
            std::string c;
            CompareOp op;
            Value constant;
            if (!MatchColumnCompareConstant(f, &c, &op, &constant)) continue;
            auto idx = table->ColumnIndex(c);
            if (!idx.ok()) continue;
            if (!group.zones[*idx].MayMatch(op, constant)) {
              prunable = true;
              break;
            }
          }
          if (prunable) continue;
        }
        ++r.morsels_touched;
        ChunkView view(group.data);
        auto sel = mode == 0 ? ev.EvaluateSelectionScalar(*predicate, view)
                             : ev.EvaluateSelection(*predicate, view);
        if (!sel.ok()) {
          std::printf("phase failed: %s\n", sel.status().ToString().c_str());
          std::exit(1);
        }
        sum_selected(group.data.column(revenue_idx), *sel, &r);
      }
    }
    r.seconds = ElapsedSeconds(t0, std::chrono::steady_clock::now()) / iters;
    return r;
  };

  PhaseResult scalar = run_phase(0);
  PhaseResult vectorized = run_phase(1);
  PhaseResult pruned = run_phase(2);

  if (scalar.rows_selected != vectorized.rows_selected ||
      scalar.rows_selected != pruned.rows_selected) {
    std::printf("FAIL: paths disagree (scalar %lld, vectorized %lld, "
                "pruned %lld)\n",
                static_cast<long long>(scalar.rows_selected),
                static_cast<long long>(vectorized.rows_selected),
                static_cast<long long>(pruned.rows_selected));
    return 1;
  }

  const double pruned_frac =
      1.0 - static_cast<double>(pruned.morsels_touched) /
                static_cast<double>(pruned.morsels_total);
  std::printf("\nlineorder: %lld rows, %zu row groups of %zu; predicate "
              "selects %lld rows (%.2f%%)\n",
              static_cast<long long>(rows), pruned.morsels_total,
              table->row_group_size(),
              static_cast<long long>(scalar.rows_selected),
              100.0 * static_cast<double>(scalar.rows_selected) /
                  static_cast<double>(rows));

  TablePrinter t({"path", "time/iter", "Mrows/s", "speedup", "morsels"});
  auto row = [&](const char* name, const PhaseResult& r) {
    char time_s[32], rate_s[32], speed_s[32], morsels_s[32];
    std::snprintf(time_s, sizeof(time_s), "%.4fs", r.seconds);
    std::snprintf(rate_s, sizeof(rate_s), "%.1f",
                  static_cast<double>(rows) / r.seconds / 1e6);
    std::snprintf(speed_s, sizeof(speed_s), "%.1fx",
                  scalar.seconds / r.seconds);
    std::snprintf(morsels_s, sizeof(morsels_s), "%zu/%zu", r.morsels_touched,
                  r.morsels_total);
    t.AddRow({name, time_s, rate_s, speed_s, morsels_s});
  };
  row("scalar (row-at-a-time)", scalar);
  row("vectorized", vectorized);
  row("vectorized + zone maps", pruned);
  std::printf("%s", t.ToString().c_str());
  std::printf("zone maps pruned %.0f%% of morsels\n", 100.0 * pruned_frac);

  const double speedup = scalar.seconds / pruned.seconds;
  // A single tiny-scale iteration on a loaded CI box is not a reliable
  // timer, so smoke mode gates only on parity (above) and pruning.
  const bool ok = (smoke || speedup >= 3.0) && pruned_frac >= 0.5;
  std::printf("%s: vectorized+pruned is %.1fx the scalar path "
              "(target >= 3x%s), pruning %.0f%% of morsels (target >= 50%%)\n",
              ok ? "PASS" : "FAIL", speedup,
              smoke ? ", not gated in smoke mode" : "", 100.0 * pruned_frac);
  return ok ? 0 : 1;
}
