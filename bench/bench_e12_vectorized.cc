// E12 — vectorized execution microbench: the same selective SSB filter
// scan four ways over lineorder row groups.
//
//   scalar      row-at-a-time reference interpreter (boxed Values), every
//               row group touched — what the engine hot path looked like
//               before vectorization.
//   vectorized  selection-vector kernels over the flat column payloads,
//               every row group touched.
//   pruned      vectorized kernels behind zone-map morsel skipping — row
//               groups whose min/max cannot satisfy the predicate are
//               never read.
//   fused       the fused-kernel tier behind the same zone maps: the whole
//               conjunction compiled once (FusedKernelRegistry) and run as
//               a single short-circuiting pass per morsel, so the three
//               intermediate selection vectors and three extra kernel
//               dispatches of the vectorized path never happen.
//
// All paths must select the same rows with bit-identical revenue sums
// (checked); the interesting outputs are the speedups, the fraction of
// morsels the zone maps skip, and the fused-over-vectorized gain — the
// measured gap the fuse_kernels cost term prices. This bench probes the
// kernel layer directly (Expr + Evaluator + Table, the same surface the
// unit tests use); end-to-end SQL still enters through the Database facade
// as ROADMAP.md requires.
//
// --json <path> writes the numbers as a flat JSON snapshot (BenchJson);
// ci/build_and_test.sh persists one per run and gates the gate_* keys
// against the committed baseline.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "bench_util.h"
#include "exec/evaluator.h"
#include "exec/fused.h"

using namespace costdb;
using namespace costdb::bench;

namespace {

double ElapsedSeconds(std::chrono::steady_clock::time_point a,
               std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

struct PhaseResult {
  double seconds = 0.0;
  int64_t rows_selected = 0;
  double revenue = 0.0;  // sum over selection, so the work can't be elided
  size_t morsels_touched = 0;
  size_t morsels_total = 0;
};

}  // namespace

int main(int argc, char** argv) {
  double scale = 0.2;
  int iters = 5;
  bool smoke = false;  // smoke mode checks wiring + parity, not wall clock
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      scale = 0.02;
      // The fused-over-vectorized ratio IS gated in smoke mode, so smoke
      // needs enough repetitions for the per-iteration average to be a
      // usable timer at tiny scale (single-iteration times are ~tens of
      // microseconds on the pruned morsel set).
      iters = 20;
      smoke = true;
    } else if (std::strcmp(argv[i], "--iters") == 0 && i + 1 < argc) {
      iters = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--scale") == 0 && i + 1 < argc) {
      scale = std::atof(argv[++i]);
    }
  }
  const std::string json_path = JsonPathFromArgs(argc, argv);

  PrintHeader("E12: vectorized scan/filter kernels",
              "Selective SSB filter scan: scalar reference interpreter vs\n"
              "selection-vector kernels vs kernels + zone-map pruning vs\n"
              "the fused single-pass conjunction kernel.");

  MetadataService meta;
  SsbOptions opts;
  opts.scale = scale;
  opts.row_group_size = 4096;
  LoadSsb(&meta, opts);
  auto table = meta.GetTable("lineorder").value();
  const int64_t rows = static_cast<int64_t>(table->num_rows());

  // SSB Q1-flavored predicate. lo_orderkey is the insertion-ordered key,
  // so its zone maps are tight and the first conjunct prunes ~90% of the
  // row groups; the discount/quantity conjuncts do per-row work on the
  // survivors.
  const int64_t key_cutoff = rows / 10;
  auto col = [&](const char* name) {
    return Expr::MakeColumn(name, LogicalType::kInt64);
  };
  auto lit = [](int64_t v) {
    return Expr::MakeConstant(Value(v), LogicalType::kInt64);
  };
  ExprPtr predicate = Expr::MakeAnd({
      Expr::MakeCompare(CompareOp::kLt, col("lo_orderkey"), lit(key_cutoff)),
      Expr::MakeCompare(CompareOp::kGe, col("lo_discount"), lit(1)),
      Expr::MakeCompare(CompareOp::kLe, col("lo_discount"), lit(3)),
      Expr::MakeCompare(CompareOp::kLt, col("lo_quantity"), lit(25)),
  });
  std::vector<ExprPtr> conjuncts;
  SplitConjuncts(predicate, &conjuncts);

  std::vector<std::string> schema;
  std::vector<LogicalType> schema_types;
  for (const auto& c : table->columns()) {
    schema.push_back(c.name);
    schema_types.push_back(c.type);
  }
  Evaluator ev(&schema);
  const size_t revenue_idx = *table->ColumnIndex("lo_revenue");

  // The fused tier: the whole conjunction compiled once, up front — the
  // same dispatch point (FusedKernelRegistry) the optimizer's fuse_kernels
  // pass and the engine use, so this bench measures exactly the kernel the
  // engine runs when a plan is annotated fused.
  auto fused_pred =
      FusedKernelRegistry::Global().Compile(*predicate, schema, schema_types);
  if (!fused_pred.has_value()) {
    std::printf("FAIL: fused registry declined the bench predicate\n");
    return 1;
  }

  // The fused tier's hot shape, measured separately and gated: the
  // mid-selectivity residual conjunction that survives after the zone maps
  // have consumed the clustering-key conjunct. Per-pass narrowing is at
  // its worst here — every vectorized pass keeps 30-90% of its input, so
  // the survivor-append branch mispredicts on a large fraction of rows and
  // two intermediate selection vectors materialize — while the fused
  // branch-free kernel's cost is flat. This is the shape the fuse_kernels
  // cost term prices in favor of fusion.
  ExprPtr hot_predicate = Expr::MakeAnd({
      Expr::MakeCompare(CompareOp::kGe, col("lo_discount"), lit(1)),
      Expr::MakeCompare(CompareOp::kLe, col("lo_discount"), lit(3)),
      Expr::MakeCompare(CompareOp::kLt, col("lo_quantity"), lit(25)),
  });
  auto fused_hot = FusedKernelRegistry::Global().Compile(*hot_predicate,
                                                         schema, schema_types);
  if (!fused_hot.has_value()) {
    std::printf("FAIL: fused registry declined the hot-shape predicate\n");
    return 1;
  }

  auto sum_selected = [&](const ColumnVector& rev, const SelectionVector& sel,
                          PhaseResult* r) {
    for (uint32_t i : sel) r->revenue += rev.GetDouble(i);
    r->rows_selected += static_cast<int64_t>(sel.size());
  };

  // Modes: 0 scalar, 1 vectorized, 2 pruned vectorized, 3 pruned fused,
  // 4 fused over every morsel (the hot-shape gate needs both paths to
  // touch the identical morsel set without pruning in the way).
  SelectionVector fused_sel;
  // Each phase is timed as the best of `reps` repetitions of the whole
  // iteration loop. The gated numbers are kernel-vs-kernel *ratios* at
  // microsecond scale, where a scheduler hiccup during one phase skews the
  // ratio by 2-3x; the minimum is the run least disturbed by interference
  // and is what makes the smoke-mode gate reliable on a loaded CI box.
  const int reps = 3;
  auto run_phase = [&](int mode, const Expr& pred, const FusedPredicate& fp) {
    PhaseResult r;
    double best_seconds = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
    auto t0 = std::chrono::steady_clock::now();
    for (int it = 0; it < iters; ++it) {
      r.rows_selected = 0;
      r.revenue = 0.0;
      r.morsels_touched = 0;
      r.morsels_total = 0;
      for (const auto& group : table->row_groups()) {
        ++r.morsels_total;
        if (mode == 2 || mode == 3) {
          bool prunable = false;
          for (const auto& f : conjuncts) {
            std::string c;
            CompareOp op;
            Value constant;
            if (!MatchColumnCompareConstant(f, &c, &op, &constant)) continue;
            auto idx = table->ColumnIndex(c);
            if (!idx.ok()) continue;
            if (!group.zones[*idx].MayMatch(op, constant)) {
              prunable = true;
              break;
            }
          }
          if (prunable) continue;
        }
        ++r.morsels_touched;
        ChunkView view(group.data);
        if (mode == 3 || mode == 4) {
          Status st = fp.Select(view, &fused_sel);
          if (!st.ok()) {
            std::printf("fused phase failed: %s\n", st.ToString().c_str());
            std::exit(1);
          }
          sum_selected(group.data.column(revenue_idx), fused_sel, &r);
          continue;
        }
        auto sel = mode == 0 ? ev.EvaluateSelectionScalar(pred, view)
                             : ev.EvaluateSelection(pred, view);
        if (!sel.ok()) {
          std::printf("phase failed: %s\n", sel.status().ToString().c_str());
          std::exit(1);
        }
        sum_selected(group.data.column(revenue_idx), *sel, &r);
      }
    }
    const double s =
        ElapsedSeconds(t0, std::chrono::steady_clock::now()) / iters;
    if (rep == 0 || s < best_seconds) best_seconds = s;
    }
    r.seconds = best_seconds;
    return r;
  };

  PhaseResult scalar = run_phase(0, *predicate, *fused_pred);
  PhaseResult vectorized = run_phase(1, *predicate, *fused_pred);
  PhaseResult pruned = run_phase(2, *predicate, *fused_pred);
  PhaseResult fused = run_phase(3, *predicate, *fused_pred);
  PhaseResult hot_vec = run_phase(1, *hot_predicate, *fused_hot);
  PhaseResult hot_fused = run_phase(4, *hot_predicate, *fused_hot);

  if (scalar.rows_selected != vectorized.rows_selected ||
      scalar.rows_selected != pruned.rows_selected ||
      scalar.rows_selected != fused.rows_selected) {
    std::printf("FAIL: paths disagree (scalar %lld, vectorized %lld, "
                "pruned %lld, fused %lld)\n",
                static_cast<long long>(scalar.rows_selected),
                static_cast<long long>(vectorized.rows_selected),
                static_cast<long long>(pruned.rows_selected),
                static_cast<long long>(fused.rows_selected));
    return 1;
  }
  if (hot_vec.rows_selected != hot_fused.rows_selected) {
    std::printf("FAIL: hot-shape paths disagree (vectorized %lld, "
                "fused %lld)\n",
                static_cast<long long>(hot_vec.rows_selected),
                static_cast<long long>(hot_fused.rows_selected));
    return 1;
  }
  // Bit-identical, not approximately equal: every path visits survivors in
  // ascending row order within the same group order (pruned groups
  // contribute nothing), so the revenue folds of a shape add the same
  // doubles in the same sequence.
  if (scalar.revenue != vectorized.revenue || scalar.revenue != pruned.revenue ||
      scalar.revenue != fused.revenue || hot_vec.revenue != hot_fused.revenue) {
    std::printf("FAIL: revenue sums are not bit-identical "
                "(scalar %.17g, vectorized %.17g, pruned %.17g, fused %.17g, "
                "hot vectorized %.17g, hot fused %.17g)\n",
                scalar.revenue, vectorized.revenue, pruned.revenue,
                fused.revenue, hot_vec.revenue, hot_fused.revenue);
    return 1;
  }

  const double pruned_frac =
      1.0 - static_cast<double>(pruned.morsels_touched) /
                static_cast<double>(pruned.morsels_total);
  std::printf("\nlineorder: %lld rows, %zu row groups of %zu; predicate "
              "selects %lld rows (%.2f%%)\n",
              static_cast<long long>(rows), pruned.morsels_total,
              table->row_group_size(),
              static_cast<long long>(scalar.rows_selected),
              100.0 * static_cast<double>(scalar.rows_selected) /
                  static_cast<double>(rows));

  TablePrinter t({"path", "time/iter", "Mrows/s", "speedup", "morsels"});
  auto row = [&](const char* name, const PhaseResult& r) {
    char time_s[32], rate_s[32], speed_s[32], morsels_s[32];
    std::snprintf(time_s, sizeof(time_s), "%.4fs", r.seconds);
    std::snprintf(rate_s, sizeof(rate_s), "%.1f",
                  static_cast<double>(rows) / r.seconds / 1e6);
    std::snprintf(speed_s, sizeof(speed_s), "%.1fx",
                  scalar.seconds / r.seconds);
    std::snprintf(morsels_s, sizeof(morsels_s), "%zu/%zu", r.morsels_touched,
                  r.morsels_total);
    t.AddRow({name, time_s, rate_s, speed_s, morsels_s});
  };
  row("scalar (row-at-a-time)", scalar);
  row("vectorized", vectorized);
  row("vectorized + zone maps", pruned);
  row("fused + zone maps", fused);
  row("hot shape: vectorized", hot_vec);
  row("hot shape: fused", hot_fused);
  std::printf("%s", t.ToString().c_str());
  std::printf("zone maps pruned %.0f%% of morsels; hot shape selects %lld "
              "rows (%.1f%%) on every morsel\n",
              100.0 * pruned_frac,
              static_cast<long long>(hot_vec.rows_selected),
              100.0 * static_cast<double>(hot_vec.rows_selected) /
                  static_cast<double>(rows));

  const double speedup = scalar.seconds / pruned.seconds;
  // Same pruned morsel set, full 4-conjunct predicate: reported for the
  // trajectory, not gated — the boundary morsel (partially matching the
  // clustering-key conjunct) makes this ratio geometry-dependent.
  const double fused_speedup = pruned.seconds / fused.seconds;
  // The gated kernel-vs-kernel comparison: the mid-selectivity residual
  // conjunction over the identical (every-morsel) set. One branch-free
  // pass against k narrowing passes with k-1 intermediate selection
  // vectors and a mispredict-prone survivor branch per pass. Gated even in
  // smoke mode — smoke runs enough iterations to make the ratio stable.
  const double hot_speedup = hot_vec.seconds / hot_fused.seconds;
  // A single tiny-scale run on a loaded CI box is not a reliable absolute
  // timer, so smoke mode does not gate the scalar-path speedup — but
  // parity (above), pruning, and the hot-shape fused ratio always gate.
  const bool ok = (smoke || speedup >= 3.0) && pruned_frac >= 0.5 &&
                  hot_speedup >= 1.5;
  std::printf("%s: vectorized+pruned is %.1fx the scalar path "
              "(target >= 3x%s), pruning %.0f%% of morsels (target >= 50%%), "
              "fused is %.2fx the vectorized kernels on the hot shape "
              "(target >= 1.5x; %.2fx on the pruned 4-conjunct shape, "
              "not gated)\n",
              ok ? "PASS" : "FAIL", speedup,
              smoke ? ", not gated in smoke mode" : "", 100.0 * pruned_frac,
              hot_speedup, fused_speedup);

  if (!json_path.empty()) {
    BenchJson j;
    j.SetStr("bench", "bench_e12_vectorized");
    j.Set("scale", scale);
    j.SetInt("iters", iters);
    j.SetBool("smoke", smoke);
    j.SetInt("rows", static_cast<long long>(rows));
    j.SetInt("row_groups", static_cast<long long>(pruned.morsels_total));
    // gate_* keys are deterministic for a fixed --smoke configuration;
    // CI's regression gate compares them against the committed snapshot.
    j.SetInt("gate_rows_selected",
             static_cast<long long>(scalar.rows_selected));
    j.SetInt("gate_hot_rows_selected",
             static_cast<long long>(hot_vec.rows_selected));
    j.Set("gate_pruned_frac", pruned_frac);
    j.SetInt("gate_pass", ok ? 1 : 0);
    // Trajectory-only metrics: machine-dependent, persisted but ungated.
    j.Set("scalar_seconds", scalar.seconds);
    j.Set("vectorized_seconds", vectorized.seconds);
    j.Set("pruned_seconds", pruned.seconds);
    j.Set("fused_seconds", fused.seconds);
    j.Set("hot_vectorized_seconds", hot_vec.seconds);
    j.Set("hot_fused_seconds", hot_fused.seconds);
    j.Set("pruned_speedup_vs_scalar", speedup);
    j.Set("fused_speedup_vs_vectorized", fused_speedup);
    j.Set("hot_fused_speedup_vs_vectorized", hot_speedup);
    j.Set("hot_fused_mrows_per_sec",
          static_cast<double>(rows) / hot_fused.seconds / 1e6);
    if (!j.WriteFile(json_path)) return 1;
  }
  return ok ? 0 : 1;
}
