// E11 — paper Section 3.1: simple analytic formulas suffice for most
// operators; pre-trained regression models close the gap on exchange-
// heavy ones — no opaque ML needed.
// bench-baseline: none — this bench emits no JSON snapshot; its
// acceptance gates are its PASS/FAIL exit code, not a committed
// ci/bench_baselines/ entry (see the drift guard in ci/build_and_test.sh).
#include "bench_util.h"
#include "common/stats_math.h"

using namespace costdb;
using namespace costdb::bench;

int main() {
  PrintHeader("E11: analytic vs regression operator models",
              "Claim (S3.1): closed-form models for scan/filter/agg;\n"
              "regression pre-trained on synthetic workloads for the\n"
              "exchange-heavy operators; explainable by construction.");
  BenchContext ctx = BenchContext::Make();

  // Ground truth for a shuffle stage: the simulator's duration (analytic
  // model + skew + quantization effects the formulas do not know about).
  auto prepared = ctx.Prepare(FindQuery("Q6").sql, UserConstraint::Sla(1e9));
  if (!prepared.ok()) return 1;
  // Find the shuffle-bearing probe pipeline.
  const Pipeline* probe = nullptr;
  for (const auto& p : prepared->planned.pipelines.pipelines) {
    for (const auto* op : p.operators) {
      if (op->kind == PhysicalPlan::Kind::kExchange &&
          op->exchange_kind == ExchangeKind::kShuffle) {
        probe = &p;
      }
    }
  }
  if (probe == nullptr) {
    std::printf("no shuffle pipeline found\n");
    return 1;
  }

  // Pre-train the regression on synthetic (volume, dop) samples labeled by
  // the simulator — the paper's "synthetic workloads that cover the
  // parameter space".
  std::vector<RegressionOperatorModel::Sample> samples;
  for (double volume_scale : {0.25, 0.5, 1.0, 2.0}) {
    VolumeMap scaled = prepared->truth;
    for (auto& [node, v] : scaled) {
      v.out_rows *= volume_scale;
      v.out_bytes *= volume_scale;
      v.source_rows *= volume_scale;
      v.scanned_bytes *= volume_scale;
    }
    for (int dop : {1, 2, 4, 8, 16, 32, 64}) {
      RegressionOperatorModel::Sample s;
      s.workload.rows_in = prepared->truth.at(probe->source).out_rows *
                           volume_scale;
      s.workload.bytes_in = prepared->truth.at(probe->source).out_bytes *
                            volume_scale;
      s.dop = dop;
      s.observed_time = ctx.simulator->TrueDuration(*probe, dop, scaled);
      samples.push_back(s);
    }
  }
  RegressionOperatorModel regression("q6_probe_pipeline");
  bool fitted = regression.Fit(samples);

  CostEstimator analytic(&ctx.hw, &ctx.node);

  TablePrinter t({"dop", "true (sim)", "analytic", "q-err", "regression",
                  "q-err"});
  std::vector<double> qe_analytic, qe_hybrid;
  for (int dop : {3, 6, 12, 24, 48}) {  // unseen DOPs
    Seconds truth = ctx.simulator->TrueDuration(*probe, dop, prepared->truth);
    Seconds a = analytic.PipelineDuration(*probe, dop, prepared->truth);
    StageWorkload w;
    w.rows_in = prepared->truth.at(probe->source).out_rows;
    w.bytes_in = prepared->truth.at(probe->source).out_bytes;
    Seconds h = fitted ? regression.StageTime(w, dop) : a;
    qe_analytic.push_back(QError(a, truth));
    qe_hybrid.push_back(QError(h, truth));
    t.AddRow({std::to_string(dop), FormatSeconds(truth), FormatSeconds(a),
              StrFormat("%.2f", QError(a, truth)), FormatSeconds(h),
              StrFormat("%.2f", QError(h, truth))});
  }
  std::printf("shuffle-heavy pipeline of Q6 (regression %s):\n%s",
              fitted ? "fitted" : "NOT fitted", t.ToString().c_str());
  std::printf("\nmean q-error: analytic %.2f, with regression %.2f\n",
              Mean(qe_analytic), Mean(qe_hybrid));
  return 0;
}
