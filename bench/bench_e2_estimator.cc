// E2 — paper Section 3.1: the cost estimator (per-operator scalability
// models + query-level pipeline simulator) predicts time and dollars at
// pipeline granularity, accurately and cheaply, for the whole query suite.
// bench-baseline: none — this bench emits no JSON snapshot; its
// acceptance gates are its PASS/FAIL exit code, not a committed
// ci/bench_baselines/ entry (see the drift guard in ci/build_and_test.sh).
#include <chrono>

#include "bench_util.h"
#include "common/stats_math.h"

using namespace costdb;
using namespace costdb::bench;

int main() {
  PrintHeader("E2: cost estimator accuracy and overhead",
              "Claim (S3.1): closed-form per-operator models + a pipeline\n"
              "scheduler give accurate, lightweight, explainable\n"
              "time/cost predictions (vs the execution simulator as\n"
              "ground truth).");
  BenchContext ctx = BenchContext::Make();

  TablePrinter t({"query", "predicted", "simulated", "q-error(time)",
                  "predicted $", "simulated $", "q-error($)"});
  std::vector<double> time_qerrors;
  std::vector<double> cost_qerrors;
  for (const auto& q : SsbQueries()) {
    UserConstraint sla = UserConstraint::Sla(45.0);
    auto prepared = ctx.Prepare(q.sql, sla);
    if (!prepared.ok()) continue;
    StaticPolicy policy;
    SimResult actual = SimulateQuery(*prepared, *ctx.simulator, &policy, sla);
    const auto& predicted = prepared->planned.estimate;
    double qe_t = QError(predicted.latency, actual.latency);
    double qe_c = QError(predicted.cost, actual.cost);
    time_qerrors.push_back(qe_t);
    cost_qerrors.push_back(qe_c);
    t.AddRow({q.id, FormatSeconds(predicted.latency),
              FormatSeconds(actual.latency), StrFormat("%.2f", qe_t),
              FormatDollars(predicted.cost), FormatDollars(actual.cost),
              StrFormat("%.2f", qe_c)});
  }
  std::printf("%s", t.ToString().c_str());
  std::printf(
      "\ntime q-error:  median %.2f  p90 %.2f   (1.0 = exact)\n",
      Percentile(time_qerrors, 50), Percentile(time_qerrors, 90));
  std::printf("cost q-error:  median %.2f  p90 %.2f\n",
              Percentile(cost_qerrors, 50), Percentile(cost_qerrors, 90));

  // Lightweightness: full-plan estimation latency.
  auto prepared = ctx.Prepare(FindQuery("Q7").sql, UserConstraint::Sla(45.0));
  if (prepared.ok()) {
    DopMap dops = prepared->planned.dops;
    auto start = std::chrono::steady_clock::now();
    const int kIters = 2000;
    for (int i = 0; i < kIters; ++i) {
      ctx.estimator->EstimatePlan(prepared->planned.pipelines, dops,
                                  prepared->planned.volumes);
    }
    auto end = std::chrono::steady_clock::now();
    double us = std::chrono::duration<double, std::micro>(end - start).count() /
                kIters;
    std::printf(
        "\nestimator invocation (5-pipeline star join): %.1f us/plan\n"
        "-> cheap enough to be called hundreds of times per optimization\n",
        us);
  }
  return 0;
}
