// E17 — the persistent block tier under the scan path:
//
//   part 1  RAM -> cold -> warm: run a three-tier query suite (fused Q1,
//           a disjunctive vectorized aggregate, sharded Q2) against the
//           resident table, persist it (PersistTable evicts the RAM
//           copy), then run the same suite twice more. The cold pass must
//           fetch every block from the simulated object store, the warm
//           pass must be served entirely from the priced block cache, and
//           all three passes must render bit-identical rows. Gates the
//           cold-read throughput against a deliberately generous floor
//           and the warm pass against a bounded slowdown — the pass bits
//           catch a broken cache, not machine-speed variance.
//
//   part 2  dollar conservation: SettleStorageRequests must bill exactly
//           the GET/PUT counts the SimulatedObjectStore itself recorded,
//           the billing breakdown's storage lines must equal those counts
//           at the catalog's per-request prices, and a second settle must
//           charge nothing (the deltas were consumed).
//
//   part 3  thrash: a fresh database whose block cache (4 KiB) is smaller
//           than any single block scans the persisted table twice. Every
//           pin misses and the block is rejected at admission, yet the
//           rows must stay bit-identical to the resident baseline — the
//           cache is an economizer, never a correctness dependency.
//
// `--smoke` runs the tiny configuration and exits 1 if any gate fails —
// the acceptance checks for the persistent storage tier, wired into CI.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "cloud/object_store.h"
#include "storage/cache.h"

using namespace costdb;
using namespace costdb::bench;

namespace {

double ElapsedSeconds(std::chrono::steady_clock::time_point a,
                      std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

std::string FreshSpillDir(const std::string& name) {
  std::error_code ec;
  std::filesystem::path base = std::filesystem::temp_directory_path(ec);
  if (ec) base = ".";
  std::filesystem::path dir = base / ("costdb_bench_" + name);
  std::filesystem::remove_all(dir, ec);
  return dir.string();
}

std::unique_ptr<Database> MakeDb(double scale, size_t cache_bytes,
                                 const std::string& spill_name) {
  DatabaseOptions opts;
  opts.exec_threads = 2;
  opts.enable_calibration = false;  // fixed estimates: deterministic gates
  opts.enable_persistent_storage = true;
  opts.block_cache_bytes = cache_bytes;
  opts.storage_spill_dir = FreshSpillDir(spill_name);
  auto db = std::make_unique<Database>(opts);
  SsbOptions data;
  data.scale = scale;
  data.row_group_size = 256;
  LoadSsb(db->meta(), data);
  return db;
}

/// Render rows order-insensitively: the sharded tier merges worker shares
/// in a plan-shape-dependent order, so cross-tier comparison sorts lines.
std::string SortedLines(const QueryResult& r) {
  std::string rendered = r.ToString(1 << 20);
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < rendered.size()) {
    size_t end = rendered.find('\n', start);
    if (end == std::string::npos) end = rendered.size();
    lines.push_back(rendered.substr(start, end - start));
    start = end + 1;
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const auto& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

/// One query per engine tier, so bit-identity covers the fused kernels,
/// the general vectorized operators, and the sharded merge path.
std::vector<std::pair<std::string, UserConstraint>> Suite() {
  return {
      {FindQuery("Q1").sql, UserConstraint()},
      {"SELECT lo_shipmode, count(*) AS n, sum(lo_revenue) AS rev "
       "FROM lineorder WHERE lo_quantity < 10 OR lo_discount = 2 "
       "GROUP BY lo_shipmode ORDER BY rev DESC",
       UserConstraint()},
      {FindQuery("Q2").sql, UserConstraint().WithWorkers(2)},
  };
}

struct SuitePass {
  std::vector<std::string> rendered;
  BlockCacheStats storage;  // summed over the suite's queries
  double wall_seconds = 0.0;
  bool all_ok = false;
};

SuitePass RunSuite(Database* db) {
  SuitePass pass;
  pass.all_ok = true;
  auto t0 = std::chrono::steady_clock::now();
  for (const auto& [sql, constraint] : Suite()) {
    auto r = db->ExecuteSql(sql, constraint);
    if (!r.ok()) {
      std::printf("suite query failed: %s\n", r.status().ToString().c_str());
      pass.all_ok = false;
      pass.rendered.push_back("<failed>");
      continue;
    }
    pass.rendered.push_back(SortedLines(r->result));
    pass.storage.MergeFrom(r->storage);
  }
  pass.wall_seconds = ElapsedSeconds(t0, std::chrono::steady_clock::now());
  return pass;
}

}  // namespace

int main(int argc, char** argv) {
  double scale = 0.02;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      scale = 0.01;
      smoke = true;
    } else if (std::strcmp(argv[i], "--scale") == 0 && i + 1 < argc) {
      scale = std::atof(argv[++i]);
    }
  }

  PrintHeader("E17 — persistent block tier under the scan path",
              "Cold scans stream bit-identical rows from priced blocks, "
              "the GDSF cache absorbs the re-reads, and every object-store "
              "request is billed exactly once.");

  // ---- part 1: RAM -> cold -> warm -------------------------------------
  auto db = MakeDb(scale, /*cache_bytes=*/64u << 20, "e17_main");
  SuitePass ram = RunSuite(db.get());
  Status persisted = db->PersistTable("lineorder");
  if (!persisted.ok()) {
    std::printf("PersistTable failed: %s\n", persisted.ToString().c_str());
    return 1;
  }
  SuitePass cold = RunSuite(db.get());
  SuitePass warm = RunSuite(db.get());

  const bool bit_identical = ram.all_ok && cold.all_ok && warm.all_ok &&
                             ram.rendered == cold.rendered &&
                             ram.rendered == warm.rendered;
  const bool cold_read_blocks =
      cold.storage.misses > 0 && cold.storage.bytes_read > 0.0;
  const bool warm_no_gets =
      warm.storage.misses == 0 && warm.storage.hits > 0;
  // Decoded MiB/s across the cold pass's fetch+decode wall time. The floor
  // is deliberately tiny (1 MiB/s): it catches a storage path that went
  // pathologically slow (e.g. a decode loop gone quadratic), not machines.
  const double cold_mib_s =
      cold.storage.miss_seconds > 0.0
          ? cold.storage.bytes_read / kMiB / cold.storage.miss_seconds
          : 0.0;
  const bool cold_floor_ok = cold_read_blocks && cold_mib_s >= 1.0;
  // Warm speedup is machine-dependent (recorded as trajectory); the gate
  // only rejects a warm pass slower than 4x the cold one — i.e. a cache
  // whose hits cost more than the misses they replace.
  const double warm_speedup =
      warm.wall_seconds > 0.0 ? cold.wall_seconds / warm.wall_seconds : 0.0;
  const bool warm_speedup_ok =
      warm_no_gets && warm.wall_seconds <= 4.0 * cold.wall_seconds;

  TablePrinter pt({"pass", "wall", "GETs", "cache hits", "MiB read"});
  pt.AddRow({"RAM", StrFormat("%.2f ms", 1e3 * ram.wall_seconds), "0", "0",
             "0.0"});
  pt.AddRow({"cold", StrFormat("%.2f ms", 1e3 * cold.wall_seconds),
             StrFormat("%lld", (long long)cold.storage.misses),
             StrFormat("%lld", (long long)cold.storage.hits),
             StrFormat("%.2f", cold.storage.bytes_read / kMiB)});
  pt.AddRow({"warm", StrFormat("%.2f ms", 1e3 * warm.wall_seconds),
             StrFormat("%lld", (long long)warm.storage.misses),
             StrFormat("%lld", (long long)warm.storage.hits),
             StrFormat("%.2f", warm.storage.bytes_read / kMiB)});
  std::printf("%s", pt.ToString().c_str());
  std::printf(
      "bit-identical across passes: %s; cold read %.1f MiB/s; warm "
      "speedup %.2fx\n",
      bit_identical ? "yes" : "NO", cold_mib_s, warm_speedup);

  // ---- part 2: dollar conservation -------------------------------------
  const SimulatedObjectStore* store = db->storage_store();
  auto settled = db->SettleStorageRequests();
  auto bill = db->storage_billing();
  const auto breakdown = db->billing_snapshot().Breakdown();
  const PricingCatalog pricing = PricingCatalog::Default();
  const Dollars get_price = pricing.per_1k_get_requests / 1000.0;
  const Dollars put_price = pricing.per_1k_put_requests / 1000.0;
  auto near = [](Dollars a, Dollars b) { return std::abs(a - b) < 1e-12; };

  const bool counts_match = store != nullptr &&
                            bill.gets == store->get_requests() &&
                            bill.puts == store->put_requests();
  Dollars get_line = 0.0, put_line = 0.0;
  if (auto it = breakdown.find("storage:get"); it != breakdown.end()) {
    get_line = it->second;
  }
  if (auto it = breakdown.find("storage:put"); it != breakdown.end()) {
    put_line = it->second;
  }
  const bool dollars_match =
      near(get_line, double(bill.gets) * get_price) &&
      near(put_line, double(bill.puts) * put_price) &&
      near(bill.dollars, get_line + put_line);
  // SettleStorageRequests returns the cumulative ledger; with no store
  // traffic in between, settling again must charge nothing new.
  auto resettled = db->SettleStorageRequests();
  const bool settle_idempotent = resettled.gets == bill.gets &&
                                 resettled.puts == bill.puts &&
                                 near(resettled.dollars, bill.dollars);
  const bool dollar_conservation =
      counts_match && dollars_match && settle_idempotent && settled.gets > 0;

  std::printf(
      "\nbilled %lld GETs / %lld PUTs = $%.8f (store saw %lld / %lld); "
      "conserved: %s\n",
      (long long)bill.gets, (long long)bill.puts, bill.dollars,
      store != nullptr ? (long long)store->get_requests() : -1LL,
      store != nullptr ? (long long)store->put_requests() : -1LL,
      dollar_conservation ? "yes" : "NO");

  // ---- part 3: thrash — table larger than the cache --------------------
  auto tiny = MakeDb(scale, /*cache_bytes=*/4096, "e17_thrash");
  SuitePass tiny_ram = RunSuite(tiny.get());
  Status tiny_persisted = tiny->PersistTable("lineorder");
  SuitePass thrash1 = RunSuite(tiny.get());
  SuitePass thrash2 = RunSuite(tiny.get());
  const bool thrash_bit_identical =
      tiny_persisted.ok() && tiny_ram.all_ok && thrash1.all_ok &&
      thrash2.all_ok && tiny_ram.rendered == thrash1.rendered &&
      tiny_ram.rendered == thrash2.rendered;
  // Every pin must miss both times: nothing fits, so nothing is retained.
  const bool thrash_all_misses =
      thrash1.storage.hits == 0 && thrash2.storage.hits == 0 &&
      thrash2.storage.misses == thrash1.storage.misses &&
      thrash1.storage.rejected > 0;
  std::printf(
      "\nthrash (4 KiB cache): %lld misses/pass, %lld rejected, rows "
      "bit-identical: %s\n",
      (long long)thrash1.storage.misses, (long long)thrash1.storage.rejected,
      thrash_bit_identical && thrash_all_misses ? "yes" : "NO");

  // Accepts --json <path> (parsed by JsonPathFromArgs). The literal flag
  // must appear in this TU: the CI smoke loop greps each bench source for
  // "--json" to decide whether to request a snapshot.
  const std::string json_path = JsonPathFromArgs(argc, argv);
  if (!json_path.empty()) {
    BenchJson json;
    json.SetBool("gate_bit_identical", bit_identical);
    json.SetInt("gate_cold_misses", cold.storage.misses);
    json.SetBool("gate_warm_no_gets", warm_no_gets);
    json.SetBool("gate_cold_floor_ok", cold_floor_ok);
    json.SetBool("gate_warm_speedup_ok", warm_speedup_ok);
    json.SetBool("gate_dollar_conservation", dollar_conservation);
    json.SetInt("gate_billed_gets", bill.gets);
    json.SetInt("gate_billed_puts", bill.puts);
    json.SetBool("gate_thrash_bit_identical",
                 thrash_bit_identical && thrash_all_misses);
    json.Set("ram_wall_s", ram.wall_seconds);
    json.Set("cold_wall_s", cold.wall_seconds);
    json.Set("warm_wall_s", warm.wall_seconds);
    json.Set("cold_read_mib_s", cold_mib_s);
    json.Set("warm_speedup", warm_speedup);
    json.Set("cold_bytes_read_mib", cold.storage.bytes_read / kMiB);
    json.SetInt("warm_cache_hits", warm.storage.hits);
    json.Set("storage_dollars", bill.dollars);
    json.SetInt("thrash_misses_per_pass", thrash1.storage.misses);
    json.SetInt("thrash_rejected", thrash1.storage.rejected);
    if (!json.WriteFile(json_path)) return 1;
  }

  const bool all_gates = bit_identical && cold_floor_ok && warm_no_gets &&
                         warm_speedup_ok && dollar_conservation &&
                         thrash_bit_identical && thrash_all_misses;
  if (smoke) {
    std::printf(
        "\nsmoke: bit-identical: %s; cold floor: %s; warm served from "
        "cache: %s; dollars conserved: %s; thrash correct: %s\n",
        bit_identical ? "yes" : "NO", cold_floor_ok ? "yes" : "NO",
        warm_no_gets && warm_speedup_ok ? "yes" : "NO",
        dollar_conservation ? "yes" : "NO",
        thrash_bit_identical && thrash_all_misses ? "yes" : "NO");
    if (!all_gates) return 1;
  }
  return 0;
}
