// F1 — paper Figure 1 / Section 2: fixed "T-shirt" warehouse sizes force
// users to over- or under-provision; per-query cost-intelligent deployment
// meets the same latency target at lower cost.
// bench-baseline: none — this bench emits no JSON snapshot; its
// acceptance gates are its PASS/FAIL exit code, not a committed
// ci/bench_baselines/ entry (see the drift guard in ci/build_and_test.sh).
#include "bench_util.h"

using namespace costdb;
using namespace costdb::bench;

int main() {
  PrintHeader("F1: T-shirt sizing vs cost-intelligent deployment",
              "Claim (S2): one-shot fixed cluster sizes waste money; the\n"
              "warehouse should size each query's pipelines itself.");
  BenchContext ctx = BenchContext::Make();

  const std::vector<std::pair<std::string, int>> tshirts = {
      {"XS", 1}, {"S", 2}, {"M", 4}, {"L", 8},
      {"XL", 16}, {"2XL", 32}, {"3XL", 64}};
  const std::vector<std::string> queries = {"Q1", "Q3", "Q5", "Q7", "Q10"};

  for (const auto& qid : queries) {
    const std::string sql = FindQuery(qid).sql;
    // Reference latency target: what the "M" warehouse achieves.
    Seconds target = 0.0;
    TablePrinter t({"config", "nodes", "latency", "bill", "SLA met"});
    std::vector<std::string> auto_row;
    for (const auto& [name, nodes] : tshirts) {
      UserConstraint loose = UserConstraint::Sla(1e9);
      auto prepared = ctx.Prepare(sql, loose);
      if (!prepared.ok()) continue;
      // A T-shirt user runs every pipeline on the whole fixed cluster.
      for (auto& [id, dop] : prepared->planned.dops) dop = nodes;
      StaticPolicy policy;
      SimResult r =
          SimulateQuery(*prepared, *ctx.simulator, &policy, loose);
      if (name == "M") target = r.latency;
      t.AddRow({name, std::to_string(nodes), FormatSeconds(r.latency),
                FormatDollars(r.cost),
                target > 0.0 && r.latency <= target * 1.05 ? "yes" : "-"});
    }
    // Cost-intelligent: give the optimizer the M-sized latency as the SLA.
    UserConstraint sla = UserConstraint::Sla(target);
    auto prepared = ctx.Prepare(sql, sla);
    if (prepared.ok()) {
      StaticPolicy policy;
      SimResult r = SimulateQuery(*prepared, *ctx.simulator, &policy, sla);
      t.AddRow({"auto(SLA=M)", "per-pipeline", FormatSeconds(r.latency),
                FormatDollars(r.cost), r.sla_met ? "yes" : "NO"});
    }
    std::printf("\n%s (SLA target = M-size latency %s)\n%s", qid.c_str(),
                FormatSeconds(target).c_str(), t.ToString().c_str());
  }
  return 0;
}
