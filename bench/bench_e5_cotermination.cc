// E5 — paper Section 3.2: the co-termination heuristic
// (C1/T1(d1) ~= C2/T2(d2) for concurrent dependent pipelines) prunes the
// DOP search and reduces the blocked machine time that siblings finishing
// at different times would otherwise bill.
// bench-baseline: none — this bench emits no JSON snapshot; its
// acceptance gates are its PASS/FAIL exit code, not a committed
// ci/bench_baselines/ entry (see the drift guard in ci/build_and_test.sh).
#include "bench_util.h"

using namespace costdb;
using namespace costdb::bench;

int main() {
  PrintHeader("E5: co-termination heuristic ablation",
              "Claim (S3.2): making concurrent dependent pipelines finish\n"
              "together minimizes resource waste from pipeline waiting\n"
              "and shrinks the DOP search.");
  BenchContext ctx = BenchContext::Make();

  // Part 1: what the heuristic buys. Start from the naive uniform
  // assignment (what a T-shirt user effectively runs) and rebalance each
  // concurrent sibling group so its members finish together.
  TablePrinter t({"query", "assignment", "blocked mach-s", "bill",
                  "latency"});
  for (const auto& qid : {"Q7", "Q8", "Q11"}) {
    auto prepared =
        ctx.Prepare(FindQuery(qid).sql, UserConstraint::Sla(1e9));
    if (!prepared.ok()) continue;
    const PipelineGraph& graph = prepared->planned.pipelines;
    const VolumeMap& volumes = prepared->planned.volumes;
    DopMap uniform;
    for (const auto& p : graph.pipelines) uniform[p.id] = 16;
    auto before = ctx.estimator->EstimatePlan(graph, uniform, volumes);
    // Apply only the co-termination rebalancing to the uniform assignment.
    DopPlanner planner(ctx.estimator);
    DopMap balanced = uniform;
    int states = 0;
    planner.CoTerminateForTest(graph, volumes, &balanced, &states);
    auto after = ctx.estimator->EstimatePlan(graph, balanced, volumes);
    t.AddRow({qid, "uniform dop 16",
              FormatSeconds(before.blocked_machine_seconds),
              FormatDollars(before.cost), FormatSeconds(before.latency)});
    t.AddRow({qid, "+ co-termination",
              FormatSeconds(after.blocked_machine_seconds),
              FormatDollars(after.cost), FormatSeconds(after.latency)});
  }
  std::printf("%s", t.ToString().c_str());

  // Part 2: search effort inside the full planner.
  TablePrinter s({"query", "search", "states", "bill", "latency"});
  for (const auto& qid : {"Q7", "Q11"}) {
    auto prepared =
        ctx.Prepare(FindQuery(qid).sql, UserConstraint::Sla(1e9));
    if (!prepared.ok()) continue;
    for (bool trim : {true, false}) {
      DopPlannerOptions opts;
      opts.use_trim_phase = trim;
      opts.use_cotermination = !trim;
      DopPlanner planner(ctx.estimator, opts);
      auto result = planner.Plan(prepared->planned.pipelines,
                                 prepared->planned.volumes,
                                 UserConstraint::Sla(8.0));
      s.AddRow({qid,
                trim ? "exhaustive trim sweep" : "co-termination heuristic",
                std::to_string(result.states_explored),
                FormatDollars(result.estimate.cost),
                FormatSeconds(result.estimate.latency)});
    }
  }
  std::printf("\n%s", s.ToString().c_str());
  std::printf(
      "\nRebalancing concurrent siblings onto a common finish time removes\n"
      "most of the blocked machine time of naive assignments; inside the\n"
      "planner the heuristic matches the exhaustive sweep's plan quality.\n");
  return 0;
}
