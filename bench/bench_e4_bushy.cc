// E4 — paper Section 3.2: exploring bounded bushy variants of the chosen
// left-deep join order at DOP-planning time trades a little extra machine
// time for materially lower latency in an elastic cloud.
// bench-baseline: none — this bench emits no JSON snapshot; its
// acceptance gates are its PASS/FAIL exit code, not a committed
// ci/bench_baselines/ entry (see the drift guard in ci/build_and_test.sh).
#include "bench_util.h"

using namespace costdb;
using namespace costdb::bench;

int main() {
  PrintHeader("E4: bushy join variants at DOP-planning time",
              "Claim (S3.2): bushier (non-expanding) join trees expose\n"
              "concurrent pipelines -> lower latency for bounded extra\n"
              "cost; the bi-objective controller picks per constraint.");
  BenchContext ctx = BenchContext::Make();

  auto query = ctx.db->BindSql(FindQuery("Q11").sql);
  if (!query.ok()) return 1;
  BushyRewriter rewriter(&ctx.meta);
  auto variants = rewriter.MakeVariants(*query, 3);
  if (!variants.ok()) return 1;

  TablePrinter t({"variant", "pipelines", "latency", "machine-time", "bill",
                  "latency vs left-deep"});
  Seconds base_latency = 0.0;
  for (const auto& v : *variants) {
    auto planned = ctx.optimizer->PlanShaped(*query, v.plan,
                                             UserConstraint::Sla(1e9));
    if (!planned.ok()) continue;
    // Fixed node budget per pipeline keeps the comparison about shape.
    DopMap dops;
    for (const auto& p : planned->pipelines.pipelines) dops[p.id] = 8;
    auto est = ctx.estimator->EstimatePlan(planned->pipelines, dops,
                                           planned->volumes);
    if (v.bushiness == 0) base_latency = est.latency;
    t.AddRow({v.bushiness == 0 ? "left-deep"
                               : StrFormat("bushy depth %d", v.bushiness),
              std::to_string(planned->pipelines.pipelines.size()),
              FormatSeconds(est.latency), FormatSeconds(est.machine_seconds),
              FormatDollars(est.cost),
              StrFormat("%.2fx", base_latency / est.latency)});
  }
  std::printf("two-fact query Q11 (lineorder x shipments x dims):\n%s",
              t.ToString().c_str());

  std::printf(
      "\nThe bi-objective controller prices every rung of the ladder and\n"
      "keeps whichever shape wins under the user's constraint:\n");
  TablePrinter pick({"constraint", "chosen shape", "latency", "bill"});
  for (const auto& [label, constraint] :
       std::vector<std::pair<std::string, UserConstraint>>{
           {"tight SLA", UserConstraint::Sla(15.0)},
           {"tight budget", UserConstraint::Budget(0.02)}}) {
    auto planned = ctx.optimizer->Plan(*query, constraint);
    if (!planned.ok()) continue;
    pick.AddRow({label,
                 planned->bushiness == 0
                     ? "left-deep"
                     : StrFormat("bushy depth %d", planned->bushiness),
                 FormatSeconds(planned->estimate.latency),
                 FormatDollars(planned->estimate.cost)});
  }
  std::printf("%s", pick.ToString().c_str());
  return 0;
}
