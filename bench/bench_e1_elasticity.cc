// E1 — paper Section 2: "executing a task on 1 machine for 100 minutes
// costs the same as 100 machines for 1 minute" — true for embarrassingly
// parallel operators (scan), false for exchange-heavy ones, where
// over-scaling wastes money AND can hurt latency.
// bench-baseline: none — this bench emits no JSON snapshot; its
// acceptance gates are its PASS/FAIL exit code, not a committed
// ci/bench_baselines/ entry (see the drift guard in ci/build_and_test.sh).
#include "bench_util.h"

using namespace costdb;
using namespace costdb::bench;

namespace {
void Sweep(BenchContext* ctx, const std::string& label,
           const std::string& sql) {
  auto prepared = ctx->Prepare(sql, UserConstraint::Sla(1e9));
  if (!prepared.ok()) return;
  TablePrinter t({"dop", "latency", "machine-time", "bill",
                  "latency x1 / latency"});
  Seconds lat1 = 0.0;
  for (int dop = 1; dop <= 256; dop *= 2) {
    DopMap dops;
    for (const auto& p : prepared->planned.pipelines.pipelines) {
      dops[p.id] = dop;
    }
    auto est = ctx->estimator->EstimatePlan(prepared->planned.pipelines, dops,
                                            prepared->planned.volumes);
    if (dop == 1) lat1 = est.latency;
    t.AddRow({std::to_string(dop), FormatSeconds(est.latency),
              FormatSeconds(est.machine_seconds), FormatDollars(est.cost),
              StrFormat("%.1fx", lat1 / est.latency)});
  }
  std::printf("\n%s\n%s", label.c_str(), t.ToString().c_str());
}
}  // namespace

int main() {
  PrintHeader("E1: resource elasticity per operator family",
              "Claim (S2): scans scale to ~free speedups at equal cost;\n"
              "distributed joins/aggregations have a finite cost-optimal\n"
              "DOP and over-scaling hurts both bill and latency.");
  BenchContext ctx = BenchContext::Make();
  Sweep(&ctx, "scan-aggregate (Q1: no data exchange)", FindQuery("Q1").sql);
  Sweep(&ctx,
        "distributed join + group-by (Q6: shuffle-heavy)",
        FindQuery("Q6").sql);
  std::printf(
      "\nPerfect-elasticity identity on the scan query: the machine-time\n"
      "column stays ~flat while latency drops ~linearly -- 100 machines\n"
      "for 1 minute really do cost the same as 1 machine for 100 minutes.\n"
      "On the shuffle-heavy query the bill grows with DOP and latency\n"
      "eventually rises again: the paper's over-provisioning hazard.\n");
  return 0;
}
