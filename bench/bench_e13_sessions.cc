// E13 — session-oriented client surface under concurrent load:
//
//   part 1  N concurrent sessions each executing one prepared statement
//           M times with distinct parameter vectors. Compared against the
//           same workload issued as literal SQL (the old text-keyed
//           path): the prepared path plans each shape once and binds
//           parameters; the literal path re-runs the optimizer for every
//           distinct literal. Reports p50/p99 per-query latency and the
//           replans avoided.
//
//   part 2  cost-aware admission under a saturated concurrency cap: an
//           expensive star join submitted *before* a cheap dimension scan
//           must be admitted *after* it — the run queue is ordered by the
//           shared estimator's predictions, not FIFO.
//
// `--smoke` runs a tiny configuration and fails (exit 1) if the prepared
// path replans or the admission queue never reorders — the acceptance
// checks for this experiment, wired into CI.
// bench-baseline: none — this bench emits no JSON snapshot; its
// acceptance gates are its PASS/FAIL exit code, not a committed
// ci/bench_baselines/ entry (see the drift guard in ci/build_and_test.sh).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <future>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "service/session.h"

using namespace costdb;
using namespace costdb::bench;

namespace {

double ElapsedSeconds(std::chrono::steady_clock::time_point a,
                      std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  size_t idx = static_cast<size_t>(p * double(v.size() - 1));
  return v[idx];
}

struct WorkloadResult {
  std::vector<double> latencies;  // per-query seconds
  size_t plans = 0;               // optimizer runs
  size_t replans_avoided = 0;
  double wall_seconds = 0.0;
};

std::unique_ptr<Database> MakeDb() {
  DatabaseOptions opts;
  opts.exec_threads = 2;
  opts.enable_calibration = false;  // fixed plans: measure caching, not drift
  return std::make_unique<Database>(opts);
}

constexpr const char* kParamSql =
    "SELECT count(*) AS n, sum(lo_revenue) AS rev FROM lineorder "
    "WHERE lo_quantity < ? AND lo_discount BETWEEN ? AND ?";

/// N sessions, each M executions of the parameterized statement.
WorkloadResult RunPrepared(Database* db, int sessions, int per_session) {
  WorkloadResult out;
  std::vector<std::vector<double>> lats(sessions);
  auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int s = 0; s < sessions; ++s) {
    threads.emplace_back([&, s] {
      Session session(db);
      auto stmt = session.Prepare(kParamSql);
      if (!stmt.ok()) return;
      for (int i = 0; i < per_session; ++i) {
        auto q0 = std::chrono::steady_clock::now();
        auto run = session.Execute(
            *stmt, {Value(int64_t{5 + (s * per_session + i) % 45}),
                    Value(int64_t{i % 4}), Value(int64_t{4 + i % 6})});
        auto q1 = std::chrono::steady_clock::now();
        if (run.ok()) lats[s].push_back(ElapsedSeconds(q0, q1));
      }
      auto stats = session.stats();
      static std::mutex mu;
      std::lock_guard<std::mutex> lock(mu);
      out.plans += stats.plans;
      out.replans_avoided += stats.replans_avoided;
    });
  }
  for (auto& t : threads) t.join();
  out.wall_seconds = ElapsedSeconds(t0, std::chrono::steady_clock::now());
  for (auto& l : lats) {
    out.latencies.insert(out.latencies.end(), l.begin(), l.end());
  }
  return out;
}

/// Same workload as literal SQL: every distinct literal is its own
/// statement text, so the old text-keyed path replans per literal.
WorkloadResult RunLiteral(Database* db, int sessions, int per_session) {
  WorkloadResult out;
  std::vector<std::vector<double>> lats(sessions);
  auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int s = 0; s < sessions; ++s) {
    threads.emplace_back([&, s] {
      Session session(db);
      for (int i = 0; i < per_session; ++i) {
        std::string sql = StrFormat(
            "SELECT count(*) AS n, sum(lo_revenue) AS rev FROM lineorder "
            "WHERE lo_quantity < %d AND lo_discount BETWEEN %d AND %d",
            5 + (s * per_session + i) % 45, i % 4, 4 + i % 6);
        auto q0 = std::chrono::steady_clock::now();
        auto run = session.ExecuteSql(sql);
        auto q1 = std::chrono::steady_clock::now();
        if (run.ok()) lats[s].push_back(ElapsedSeconds(q0, q1));
      }
      auto stats = session.stats();
      static std::mutex mu;
      std::lock_guard<std::mutex> lock(mu);
      out.plans += stats.plans;
      out.replans_avoided += stats.replans_avoided;
    });
  }
  for (auto& t : threads) t.join();
  out.wall_seconds = ElapsedSeconds(t0, std::chrono::steady_clock::now());
  for (auto& l : lats) {
    out.latencies.insert(out.latencies.end(), l.begin(), l.end());
  }
  return out;
}

/// Saturate a one-slot admission controller and check that a cheap scan
/// submitted after an expensive star join is admitted before it. The
/// slot is held by a gated no-op submission so both queries are
/// guaranteed to be queued when it frees up.
size_t RunAdmissionDemo(bool* ordering_ok) {
  DatabaseOptions opts;
  opts.exec_threads = 2;
  opts.enable_calibration = false;
  opts.admission.max_concurrent = 1;
  Database db(opts);
  SsbOptions data;
  data.scale = 0.01;
  data.row_group_size = 256;
  LoadSsb(db.meta(), data);
  db.meta()->SetVirtualScale("lineorder", 1e5);  // estimates, not rows

  // Occupy the only slot until both contenders are queued.
  std::promise<void> release;
  AdmissionController::Submission blocker;
  blocker.est_latency = 0.0;  // cheapest: admitted first
  auto future = release.get_future();
  blocker.run = [&future] { future.wait(); };
  auto ticket = db.admission()->Submit(std::move(blocker));
  while (db.admission()->state(ticket) !=
         AdmissionController::Ticket::State::kRunning) {
    std::this_thread::yield();
  }

  Session session(&db);
  auto expensive = session.Submit(FindQuery("Q5").sql);
  auto cheap = session.Submit("SELECT count(*) AS n FROM supplier");
  if (!expensive.ok() || !cheap.ok()) {
    release.set_value();
    *ordering_ok = false;
    return 0;
  }
  release.set_value();
  const Status expensive_done = (*expensive)->Wait();
  const Status cheap_done = (*cheap)->Wait();
  if (!expensive_done.ok() || !cheap_done.ok()) {
    *ordering_ok = false;
    return 0;
  }
  size_t reordered = db.admission()->stats().reordered;
  *ordering_ok = reordered >= 1;
  return reordered;
}

}  // namespace

int main(int argc, char** argv) {
  int sessions = 8;
  int per_session = 50;
  double scale = 0.05;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      sessions = 3;
      per_session = 10;
      scale = 0.01;
      smoke = true;
    } else if (std::strcmp(argv[i], "--sessions") == 0 && i + 1 < argc) {
      sessions = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--per-session") == 0 && i + 1 < argc) {
      per_session = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--scale") == 0 && i + 1 < argc) {
      scale = std::atof(argv[++i]);
    }
  }

  PrintHeader("E13 — sessions, prepared statements, cost-aware admission",
              "Prepared statements plan once per shape; admission orders "
              "the queue by estimated cost, not arrival.");

  auto load = [&](Database* db) {
    SsbOptions data;
    data.scale = scale;
    data.row_group_size = 1024;
    LoadSsb(db->meta(), data);
  };

  auto prepared_db = MakeDb();
  load(prepared_db.get());
  WorkloadResult prepared = RunPrepared(prepared_db.get(), sessions,
                                        per_session);
  auto prepared_cache = prepared_db->plan_cache_stats();

  auto literal_db = MakeDb();
  load(literal_db.get());
  WorkloadResult literal = RunLiteral(literal_db.get(), sessions,
                                      per_session);
  auto literal_cache = literal_db->plan_cache_stats();

  std::printf("\n%d sessions x %d parameterized queries (scale %.2f)\n\n",
              sessions, per_session, scale);
  TablePrinter t({"path", "optimizer runs", "replans avoided", "p50", "p99",
                  "wall"});
  auto row = [&](const char* name, const WorkloadResult& r,
                 const Database::CacheStats& c) {
    t.AddRow({name, StrFormat("%zu", c.misses),
              StrFormat("%zu", r.replans_avoided),
              StrFormat("%.2f ms", 1e3 * Percentile(r.latencies, 0.5)),
              StrFormat("%.2f ms", 1e3 * Percentile(r.latencies, 0.99)),
              StrFormat("%.2f s", r.wall_seconds)});
  };
  row("prepared (?)", prepared, prepared_cache);
  row("literal SQL", literal, literal_cache);
  std::printf("%s", t.ToString().c_str());
  std::printf(
      "\nThe prepared path planned %zu time(s) for %zu executions; the\n"
      "literal path paid the optimizer %zu times for the same workload.\n",
      prepared_cache.misses, prepared.latencies.size(),
      literal_cache.misses);

  bool ordering_ok = false;
  size_t reordered = RunAdmissionDemo(&ordering_ok);
  std::printf(
      "\nadmission demo (cap=1): expensive star join submitted before a\n"
      "cheap dimension scan; reorderings observed: %zu — %s\n",
      reordered,
      ordering_ok ? "the cheap query jumped the queue"
                  : "NO reordering (unexpected)");

  if (smoke) {
    bool plans_ok = prepared_cache.misses <= 1;
    bool wins = literal_cache.misses > prepared_cache.misses;
    std::printf("\nsmoke: prepared planned once: %s; literal replans more: "
                "%s; admission reorders: %s\n",
                plans_ok ? "yes" : "NO", wins ? "yes" : "NO",
                ordering_ok ? "yes" : "NO");
    if (!plans_ok || !wins || !ordering_ok) return 1;
  }
  return 0;
}
