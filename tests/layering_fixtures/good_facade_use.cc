// Layering-linter fixture (never compiled): the sanctioned shape — a
// tuning component planning through the pass facade and the service
// layer planning through query_service. Must be accepted.
// pretend: src/tuning/facade_use.cc
// expect: none
#include "optimizer/passes.h"
#include "service/database.h"
