// Layering-linter fixture (never compiled): a tuning component running
// its own bind stage — tuning/stats/workload consume the pass facade.
// pretend: src/tuning/rogue_binder_use.cc
// expect: own-planner
#include "sql/binder.h"
