// Layering-linter fixture (never compiled): an execution engine talking
// to the simulated object store directly. Engines scan through
// TableStorage/BlockCache so every GET is priced, billed, and fed to the
// storage-term calibration; the linter must reject the direct include.
// pretend: src/exec/rogue_store_scan.cc
// expect: engine-object-store
#include "cloud/object_store.h"
