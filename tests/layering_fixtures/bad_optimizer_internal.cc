// Layering-linter fixture (never compiled): engine code reaching into a
// planner stage. The linter must reject this include when the file lives
// outside src/optimizer/ and tests/.
// pretend: src/exec/rogue_planner_use.cc
// expect: optimizer-internal
#include "optimizer/dag_planner.h"
