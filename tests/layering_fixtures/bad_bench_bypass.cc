// Layering-linter fixture (never compiled): a bench driving the planning
// service directly instead of entering through Session.
// pretend: bench/bench_rogue.cc
// expect: session-bypass
#include "service/query_service.h"
