// Layering-linter fixture (never compiled): service code talking to the
// exchange wire format directly instead of going through the sharded
// engine's transport seam. src/net/ is internal to the exchange machinery
// (src/exec/ owns the seam, src/sim/ predicts it, tests exercise it); a
// second direct consumer would fork the serialization contract, so the
// linter must reject this include from anywhere else.
// pretend: src/service/rogue_wire_encode.cc
// expect: net-internal
#include "net/wire.h"
