// Layering-linter fixture (never compiled): an example wiring the
// optimizer facade itself — client code must go through Session.
// pretend: examples/rogue_example.cpp
// expect: session-bypass
#include "optimizer/passes.h"
