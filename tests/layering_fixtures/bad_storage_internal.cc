// Layering-linter fixture (never compiled): service code decoding blocks
// itself instead of going through TableStorage. The block format under
// src/storage/block/ is internal to the storage/catalog layer; the linter
// must reject this include from anywhere else.
// pretend: src/service/rogue_block_decode.cc
// expect: storage-internal
#include "storage/block/block_reader.h"
