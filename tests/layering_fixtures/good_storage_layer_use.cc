// Layering-linter fixture (never compiled): the sanctioned storage
// shapes — the storage layer itself using its block internals, and the
// catalog consuming manifest summaries. Must be accepted.
// pretend: src/storage/persistent_helper.cc
// expect: none
#include "storage/block/block_writer.h"
#include "storage/block/manifest.h"
#include "storage/persistent.h"
