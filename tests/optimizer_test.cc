#include <gtest/gtest.h>

#include "exec/engine.h"
#include "optimizer/bi_objective.h"
#include "optimizer/optimizer.h"
#include "workload/ssb.h"

namespace costdb {
namespace {

class OptimizerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SsbOptions opts;
    opts.scale = 0.01;
    LoadSsb(&meta_, opts);
    node_ = PricingCatalog::Default().default_node();
    estimator_ = std::make_unique<CostEstimator>(&hw_, &node_);
  }

  BoundQuery Bind(const std::string& sql) {
    Binder binder(&meta_);
    auto q = binder.BindSql(sql);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    return q.ok() ? std::move(*q) : BoundQuery{};
  }

  MetadataService meta_;
  HardwareCalibration hw_;
  InstanceType node_;
  std::unique_ptr<CostEstimator> estimator_;
};

TEST_F(OptimizerTest, SlaModeMeetsFeasibleSla) {
  BiObjectiveOptimizer opt(&meta_, estimator_.get());
  auto loose = opt.PlanSql(FindQuery("Q5").sql, UserConstraint::Sla(1e6));
  ASSERT_TRUE(loose.ok()) << loose.status().ToString();
  EXPECT_TRUE(loose->feasible);
  EXPECT_LE(loose->estimate.latency, 1e6);
}

TEST_F(OptimizerTest, TighterSlaCostsMore) {
  BiObjectiveOptimizer opt(&meta_, estimator_.get());
  auto loose = opt.PlanSql(FindQuery("Q7").sql, UserConstraint::Sla(1e5));
  ASSERT_TRUE(loose.ok());
  Seconds relaxed_latency = loose->estimate.latency;
  auto tight = opt.PlanSql(FindQuery("Q7").sql,
                           UserConstraint::Sla(relaxed_latency / 8.0));
  ASSERT_TRUE(tight.ok());
  if (tight->feasible) {
    EXPECT_LT(tight->estimate.latency, relaxed_latency);
    EXPECT_GE(tight->estimate.cost, loose->estimate.cost * 0.99);
  }
}

TEST_F(OptimizerTest, ImpossibleSlaReportedInfeasible) {
  BiObjectiveOptimizer opt(&meta_, estimator_.get());
  auto r = opt.PlanSql(FindQuery("Q8").sql, UserConstraint::Sla(1e-9));
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->feasible);
}

TEST_F(OptimizerTest, BudgetModeRespectsBudget) {
  BiObjectiveOptimizer opt(&meta_, estimator_.get());
  // Floor: the cheapest possible execution (every DOP at 1).
  auto floor = opt.PlanSql(FindQuery("Q7").sql, UserConstraint::Budget(0.0));
  ASSERT_TRUE(floor.ok());
  EXPECT_FALSE(floor->feasible);  // nothing fits a zero budget
  // Ceiling: unlimited budget buys the fastest plan.
  auto rich = opt.PlanSql(FindQuery("Q7").sql, UserConstraint::Budget(1e9));
  ASSERT_TRUE(rich.ok());
  ASSERT_GE(rich->estimate.cost, floor->estimate.cost);
  // A budget between floor and ceiling must be honored.
  Dollars budget = (floor->estimate.cost + rich->estimate.cost) / 2.0;
  auto mid = opt.PlanSql(FindQuery("Q7").sql, UserConstraint::Budget(budget));
  ASSERT_TRUE(mid.ok());
  EXPECT_TRUE(mid->feasible);
  EXPECT_LE(mid->estimate.cost, budget * 1.0001);
  EXPECT_GE(mid->estimate.latency, rich->estimate.latency * 0.999);
}

TEST_F(OptimizerTest, LargerBudgetNeverSlower) {
  BiObjectiveOptimizer opt(&meta_, estimator_.get());
  Seconds prev_latency = 1e18;
  for (Dollars budget : {1e-5, 1e-4, 1e-3, 1e-2}) {
    auto r = opt.PlanSql(FindQuery("Q5").sql, UserConstraint::Budget(budget));
    ASSERT_TRUE(r.ok());
    EXPECT_LE(r->estimate.latency, prev_latency * 1.01)
        << "budget=" << budget;
    prev_latency = r->estimate.latency;
  }
}

TEST_F(OptimizerTest, CoTerminationReducesBlockedTime) {
  // Q7 has several concurrent build pipelines -> blocking waste exists.
  BoundQuery q = Bind(FindQuery("Q7").sql);
  Optimizer shaper(&meta_);
  auto plan = shaper.OptimizeQuery(q);
  ASSERT_TRUE(plan.ok());
  PipelineGraph graph = BuildPipelines(plan->get());
  CardinalityEstimator cards(&meta_, &q.relations);
  VolumeMap volumes = ComputeVolumes(plan->get(), cards);

  DopPlannerOptions with;
  with.use_cotermination = true;
  DopPlannerOptions without;
  without.use_cotermination = false;
  UserConstraint sla = UserConstraint::Sla(1.0);
  auto r_with = DopPlanner(estimator_.get(), with).Plan(graph, volumes, sla);
  auto r_without =
      DopPlanner(estimator_.get(), without).Plan(graph, volumes, sla);
  EXPECT_LE(r_with.estimate.blocked_machine_seconds,
            r_without.estimate.blocked_machine_seconds + 1e-9);
  EXPECT_LE(r_with.estimate.cost, r_without.estimate.cost * 1.05);
}

TEST_F(OptimizerTest, ConstrainedSearchNearParetoOracle) {
  // On a small plan, exhaustive Pareto enumeration is feasible; the
  // constrained greedy must land near the frontier point.
  BoundQuery q = Bind(FindQuery("Q3").sql);
  Optimizer shaper(&meta_);
  auto plan = shaper.OptimizeQuery(q);
  ASSERT_TRUE(plan.ok());
  PipelineGraph graph = BuildPipelines(plan->get());
  CardinalityEstimator cards(&meta_, &q.relations);
  VolumeMap volumes = ComputeVolumes(plan->get(), cards);

  DopPlannerOptions opts;
  opts.max_dop = 16;  // keep the oracle tractable
  DopPlanner planner(estimator_.get(), opts);
  int oracle_states = 0;
  auto frontier = planner.EnumeratePareto(graph, volumes, &oracle_states);
  ASSERT_FALSE(frontier.empty());
  // Frontier is sorted by latency and non-dominated.
  for (size_t i = 1; i < frontier.size(); ++i) {
    EXPECT_GE(frontier[i].latency, frontier[i - 1].latency);
    EXPECT_LE(frontier[i].cost, frontier[i - 1].cost + 1e-12);
  }
  Seconds sla = frontier[frontier.size() / 2].latency * 1.01;
  auto greedy = planner.Plan(graph, volumes, UserConstraint::Sla(sla));
  ASSERT_TRUE(greedy.feasible);
  Dollars oracle_cost = 1e18;
  for (const auto& e : frontier) {
    if (e.latency <= sla) oracle_cost = std::min(oracle_cost, e.cost);
  }
  EXPECT_LE(greedy.estimate.cost, oracle_cost * 1.5);
  EXPECT_LT(greedy.states_explored, oracle_states / 4);
}

TEST_F(OptimizerTest, BushyVariantsProduced) {
  BushyRewriter rewriter(&meta_);
  auto variants = rewriter.MakeVariants(Bind(FindQuery("Q11").sql), 2);
  ASSERT_TRUE(variants.ok()) << variants.status().ToString();
  ASSERT_GE(variants->size(), 2u);
  EXPECT_EQ((*variants)[0].bushiness, 0);
  EXPECT_GT((*variants)[1].bushiness, 0);
}

TEST_F(OptimizerTest, BushyVariantsExecuteToSameResult) {
  BoundQuery q = Bind(FindQuery("Q11").sql);
  BushyRewriter rewriter(&meta_);
  auto variants = rewriter.MakeVariants(q, 2);
  ASSERT_TRUE(variants.ok());
  ASSERT_GE(variants->size(), 2u);
  PhysicalPlanner physical(&meta_, &q.relations);
  LocalEngine engine(4);
  std::string reference;
  for (const auto& v : *variants) {
    auto plan = physical.Plan(v.plan);
    ASSERT_TRUE(plan.ok());
    auto result = engine.Execute(plan->get());
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    // Q11 groups by year and we sort rows textually for comparison.
    std::string repr = result->chunk.ToString(-1);
    if (reference.empty()) {
      reference = repr;
    } else {
      EXPECT_EQ(repr, reference) << "bushiness=" << v.bushiness;
    }
  }
}

TEST_F(OptimizerTest, BushyNotProducedForTwoRelations) {
  BushyRewriter rewriter(&meta_);
  auto variants = rewriter.MakeVariants(Bind(FindQuery("Q3").sql), 2);
  ASSERT_TRUE(variants.ok());
  EXPECT_EQ(variants->size(), 1u);
}

TEST_F(OptimizerTest, PlannedQueryExecutesCorrectly) {
  BiObjectiveOptimizer opt(&meta_, estimator_.get());
  auto planned = opt.PlanSql(FindQuery("Q6").sql, UserConstraint::Sla(60.0));
  ASSERT_TRUE(planned.ok());
  LocalEngine engine(4);
  auto result = engine.Execute(planned->plan.get());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->names.size(), 3u);
}

TEST_F(OptimizerTest, DopsCoverEveryPipeline) {
  BiObjectiveOptimizer opt(&meta_, estimator_.get());
  auto planned = opt.PlanSql(FindQuery("Q8").sql, UserConstraint::Sla(10.0));
  ASSERT_TRUE(planned.ok());
  for (const auto& p : planned->pipelines.pipelines) {
    auto it = planned->dops.find(p.id);
    ASSERT_NE(it, planned->dops.end());
    EXPECT_GE(it->second, 1);
  }
}

}  // namespace
}  // namespace costdb
