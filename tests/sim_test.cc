#include <gtest/gtest.h>

#include "runtime/policies.h"
#include "sim/harness.h"
#include "workload/ssb.h"

namespace costdb {
namespace {

class SimTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SsbOptions opts;
    opts.scale = 0.01;
    LoadSsb(&meta_, opts);
    // Make the *fact* volumes warehouse-sized so pipeline times are tens
    // of seconds, not microseconds (the in-process data is tiny);
    // dimensions stay small, as in a real star schema.
    meta_.SetVirtualScale("lineorder", 200000.0);
    meta_.SetVirtualScale("shipments", 200000.0);
    node_ = PricingCatalog::Default().default_node();
    estimator_ = std::make_unique<CostEstimator>(&hw_, &node_);
    simulator_ = std::make_unique<DistributedSimulator>(estimator_.get());
    optimizer_ = std::make_unique<BiObjectiveOptimizer>(&meta_,
                                                        estimator_.get());
  }

  /// Make the optimizer see stats `factor`x off from the truth for the
  /// fact table (the paper's misestimation scenario).
  void InjectError(double factor) {
    meta_.SetStatsErrorFactor("lineorder", factor);
  }

  MetadataService meta_;
  HardwareCalibration hw_;
  InstanceType node_;
  std::unique_ptr<CostEstimator> estimator_;
  std::unique_ptr<DistributedSimulator> simulator_;
  std::unique_ptr<BiObjectiveOptimizer> optimizer_;
};

TEST_F(SimTest, StaticPolicyRunsToCompletion) {
  UserConstraint sla = UserConstraint::Sla(120.0);
  auto prepared = PrepareQuery(&meta_, *optimizer_, FindQuery("Q5").sql, sla);
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  StaticPolicy policy;
  SimResult r = SimulateQuery(*prepared, *simulator_, &policy, sla);
  EXPECT_GT(r.latency, 0.0);
  EXPECT_GT(r.cost, 0.0);
  EXPECT_GT(r.machine_seconds, 0.0);
  EXPECT_EQ(r.total_resizes, 0);
  EXPECT_EQ(r.pipelines.size(), prepared->planned.pipelines.pipelines.size());
}

TEST_F(SimTest, DeterministicAcrossRuns) {
  UserConstraint sla = UserConstraint::Sla(120.0);
  auto prepared = PrepareQuery(&meta_, *optimizer_, FindQuery("Q3").sql, sla);
  ASSERT_TRUE(prepared.ok());
  StaticPolicy p1, p2;
  SimResult a = SimulateQuery(*prepared, *simulator_, &p1, sla);
  SimResult b = SimulateQuery(*prepared, *simulator_, &p2, sla);
  EXPECT_DOUBLE_EQ(a.latency, b.latency);
  EXPECT_DOUBLE_EQ(a.cost, b.cost);
}

TEST_F(SimTest, TrueDurationIncludesSkewAndQuantization) {
  UserConstraint sla = UserConstraint::Sla(120.0);
  auto prepared = PrepareQuery(&meta_, *optimizer_, FindQuery("Q1").sql, sla);
  ASSERT_TRUE(prepared.ok());
  const Pipeline& p = prepared->planned.pipelines.pipelines[0];
  Seconds model = estimator_->PipelineDuration(p, 8, prepared->truth);
  Seconds truth = simulator_->TrueDuration(p, 8, prepared->truth);
  EXPECT_GT(truth, model);          // skew/quantization only slow down
  EXPECT_LT(truth, model * 1.6);    // but boundedly so
}

TEST_F(SimTest, AccurateStatsMeetSla) {
  // With truthful statistics the static plan should satisfy a feasible SLA.
  UserConstraint sla = UserConstraint::Sla(60.0);
  auto prepared = PrepareQuery(&meta_, *optimizer_, FindQuery("Q5").sql, sla);
  ASSERT_TRUE(prepared.ok());
  ASSERT_TRUE(prepared->planned.feasible);
  StaticPolicy policy;
  SimResult r = SimulateQuery(*prepared, *simulator_, &policy, sla);
  EXPECT_TRUE(r.sla_met) << "latency=" << r.latency;
}

TEST_F(SimTest, UnderestimationBreaksStaticButMonitorRecovers) {
  UserConstraint sla = UserConstraint::Sla(12.0);
  // The optimizer believes the fact table is 8x smaller than reality, so
  // the static plan just barely meets the SLA in its own belief.
  InjectError(1.0 / 8.0);
  auto prepared = PrepareQuery(&meta_, *optimizer_, FindQuery("Q5").sql, sla);
  InjectError(1.0);
  ASSERT_TRUE(prepared.ok());
  ASSERT_TRUE(prepared->planned.feasible);
  // Recompute the truth with corrected stats (8x the believed volume).
  CardinalityEstimator truth_cards(&meta_, &prepared->query.relations, true);
  prepared->truth = ComputeVolumes(prepared->planned.plan.get(), truth_cards);

  StaticPolicy coast;
  SimResult static_r = SimulateQuery(*prepared, *simulator_, &coast, sla);
  EXPECT_FALSE(static_r.sla_met) << "latency=" << static_r.latency;
  PipelineDopMonitor monitor;
  SimResult monitor_r = SimulateQuery(*prepared, *simulator_, &monitor, sla);
  // The monitor must react (resize at least once) and recover latency.
  EXPECT_GT(monitor_r.total_resizes, 0);
  EXPECT_LT(monitor_r.latency, static_r.latency);
}

TEST_F(SimTest, OverestimationStaysWithinSlaAtBoundedCost) {
  UserConstraint sla = UserConstraint::Sla(30.0);
  // The optimizer believes the fact table is 4x bigger than reality and
  // over-provisions the exchange-heavy pipelines.
  InjectError(4.0);
  auto prepared = PrepareQuery(&meta_, *optimizer_, FindQuery("Q5").sql, sla);
  InjectError(1.0);
  ASSERT_TRUE(prepared.ok());
  CardinalityEstimator truth_cards(&meta_, &prepared->query.relations, true);
  prepared->truth = ComputeVolumes(prepared->planned.plan.get(), truth_cards);

  StaticPolicy coast;
  SimResult static_r = SimulateQuery(*prepared, *simulator_, &coast, sla);
  PipelineDopMonitor monitor;
  SimResult monitor_r = SimulateQuery(*prepared, *simulator_, &monitor, sla);
  // The monitor must keep the SLA and not pay materially more than the
  // static plan; with sublinear operators trimming usually saves money.
  EXPECT_TRUE(monitor_r.sla_met);
  EXPECT_LE(monitor_r.cost, static_r.cost * 1.1);
}

TEST_F(SimTest, StageBoundaryPaysMaterializationTax) {
  UserConstraint sla = UserConstraint::Sla(60.0);
  auto prepared = PrepareQuery(&meta_, *optimizer_, FindQuery("Q5").sql, sla);
  ASSERT_TRUE(prepared.ok());
  StageBoundaryPolicy stage(2.0);
  SimResult r = SimulateQuery(*prepared, *simulator_, &stage, sla);
  EXPECT_GT(r.materialization_seconds, 0.0);
  StaticPolicy streaming;
  SimResult s = SimulateQuery(*prepared, *simulator_, &streaming, sla);
  EXPECT_DOUBLE_EQ(s.materialization_seconds, 0.0);
}

TEST_F(SimTest, ResizeOverheadAccounted) {
  UserConstraint sla = UserConstraint::Sla(20.0);
  InjectError(1.0 / 8.0);
  auto prepared = PrepareQuery(&meta_, *optimizer_, FindQuery("Q3").sql, sla);
  InjectError(1.0);
  ASSERT_TRUE(prepared.ok());
  CardinalityEstimator truth_cards(&meta_, &prepared->query.relations, true);
  prepared->truth = ComputeVolumes(prepared->planned.plan.get(), truth_cards);
  PipelineDopMonitor monitor;
  SimResult r = SimulateQuery(*prepared, *simulator_, &monitor, sla);
  if (r.total_resizes > 0) {
    EXPECT_GT(r.resize_overhead_seconds, 0.0);
  }
}

TEST_F(SimTest, BilledCostMatchesMachineTimeOrder) {
  UserConstraint sla = UserConstraint::Sla(60.0);
  auto prepared = PrepareQuery(&meta_, *optimizer_, FindQuery("Q6").sql, sla);
  ASSERT_TRUE(prepared.ok());
  StaticPolicy policy;
  CloudEnv env;
  SimResult r = SimulateQuery(*prepared, *simulator_, &policy, sla, &env);
  double pps = env.pricing().default_node().price_per_second();
  EXPECT_NEAR(r.cost, r.machine_seconds * pps, r.cost * 0.01);
}

}  // namespace
}  // namespace costdb
