#include <gtest/gtest.h>

#include "sql/binder.h"

namespace costdb {
namespace {

TEST(LexerTest, BasicTokens) {
  auto r = Tokenize("SELECT a.b, 42, 3.5, 'it''s' FROM t WHERE x <= 7;");
  ASSERT_TRUE(r.ok());
  const auto& toks = *r;
  EXPECT_TRUE(TokenIs(toks[0], "select"));
  EXPECT_EQ(toks[1].text, "a");
  EXPECT_EQ(toks[2].text, ".");
  EXPECT_EQ(toks[3].text, "b");
  EXPECT_EQ(toks[5].int_val, 42);
  EXPECT_DOUBLE_EQ(toks[7].float_val, 3.5);
  EXPECT_EQ(toks[9].text, "it's");
  EXPECT_EQ(toks.back().kind, TokenKind::kEnd);
}

TEST(LexerTest, TwoCharOperators) {
  auto r = Tokenize("a <= b >= c <> d != e");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)[1].text, "<=");
  EXPECT_EQ((*r)[3].text, ">=");
  EXPECT_EQ((*r)[5].text, "<>");
  EXPECT_EQ((*r)[7].text, "<>");  // != normalized
}

TEST(LexerTest, Errors) {
  EXPECT_TRUE(Tokenize("SELECT 'oops").status().IsInvalidArgument());
  EXPECT_TRUE(Tokenize("SELECT @x").status().IsInvalidArgument());
}

TEST(ParserTest, SimpleSelect) {
  auto r = ParseQuery("SELECT a, b FROM t WHERE a > 5 ORDER BY b DESC LIMIT 3");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->select_items.size(), 2u);
  EXPECT_EQ(r->from.size(), 1u);
  EXPECT_EQ(r->from[0].table, "t");
  ASSERT_TRUE(r->where != nullptr);
  ASSERT_EQ(r->order_by.size(), 1u);
  EXPECT_TRUE(r->order_by[0].descending);
  EXPECT_EQ(r->limit, 3);
}

TEST(ParserTest, SelectStarAndAliases) {
  auto r = ParseQuery("SELECT * FROM orders o, customer AS c");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->select_star);
  ASSERT_EQ(r->from.size(), 2u);
  EXPECT_EQ(r->from[0].alias, "o");
  EXPECT_EQ(r->from[1].alias, "c");
}

TEST(ParserTest, JoinSyntax) {
  auto r = ParseQuery(
      "SELECT o.id FROM orders o JOIN customer c ON o.cid = c.id "
      "INNER JOIN nation n ON c.nid = n.id");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->from.size(), 3u);
  EXPECT_EQ(r->join_conditions.size(), 2u);
}

TEST(ParserTest, GroupByHaving) {
  auto r = ParseQuery(
      "SELECT k, sum(v) AS total FROM t GROUP BY k HAVING sum(v) > 10");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->group_by.size(), 1u);
  ASSERT_TRUE(r->having != nullptr);
  EXPECT_EQ(r->select_items[1].alias, "total");
}

TEST(ParserTest, InBetweenLikeDate) {
  auto r = ParseQuery(
      "SELECT a FROM t WHERE a IN (1, 2, 3) AND b BETWEEN 5 AND 9 "
      "AND s LIKE 'abc%' AND d >= DATE '1995-01-01'");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
}

TEST(ParserTest, LikeEscapeClause) {
  auto r = ParseQuery("SELECT a FROM t WHERE s LIKE '50!%%' ESCAPE '!'");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_NE(r->where, nullptr);
  EXPECT_EQ(r->where->kind, ParsedExpr::Kind::kBinary);
  EXPECT_EQ(r->where->str_val, "LIKE");
  ASSERT_EQ(r->where->children.size(), 3u);  // input, pattern, escape
  EXPECT_EQ(r->where->children[2]->kind, ParsedExpr::Kind::kString);
  EXPECT_EQ(r->where->children[2]->str_val, "!");
}

TEST(ParserTest, ArithmeticPrecedence) {
  auto r = ParseQuery("SELECT a + b * c FROM t");
  ASSERT_TRUE(r.ok());
  const ParsedExpr& e = *r->select_items[0].expr;
  ASSERT_EQ(e.kind, ParsedExpr::Kind::kBinary);
  EXPECT_EQ(e.str_val, "+");
  EXPECT_EQ(e.children[1]->str_val, "*");
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseQuery("SELECT FROM t").ok());
  EXPECT_FALSE(ParseQuery("SELECT a t").ok());  // missing FROM
  EXPECT_FALSE(ParseQuery("SELECT a FROM t WHERE").ok());
  EXPECT_FALSE(ParseQuery("SELECT a FROM t LIMIT x").ok());
  EXPECT_FALSE(ParseQuery("SELECT a FROM t extra junk").ok());
}

class BinderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto orders = std::make_shared<Table>(
        "orders", std::vector<ColumnDef>{{"id", LogicalType::kInt64},
                                         {"cid", LogicalType::kInt64},
                                         {"amount", LogicalType::kDouble},
                                         {"odate", LogicalType::kDate}});
    auto customer = std::make_shared<Table>(
        "customer", std::vector<ColumnDef>{{"id", LogicalType::kInt64},
                                           {"name", LogicalType::kVarchar}});
    meta_.RegisterTable(orders);
    meta_.RegisterTable(customer);
  }

  MetadataService meta_;
};

TEST_F(BinderTest, ResolvesQualifiedAndUnqualified) {
  Binder binder(&meta_);
  auto q = binder.BindSql("SELECT o.amount, odate FROM orders o");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->select_exprs[0]->column, "o.amount");
  EXPECT_EQ(q->select_exprs[0]->type, LogicalType::kDouble);
  EXPECT_EQ(q->select_exprs[1]->column, "o.odate");
}

TEST_F(BinderTest, AmbiguousColumnRejected) {
  Binder binder(&meta_);
  auto q = binder.BindSql("SELECT id FROM orders, customer");
  EXPECT_TRUE(q.status().IsInvalidArgument()) << q.status().ToString();
}

TEST_F(BinderTest, UnknownTableAndColumn) {
  Binder binder(&meta_);
  EXPECT_TRUE(binder.BindSql("SELECT x FROM nope").status().IsNotFound());
  EXPECT_TRUE(
      binder.BindSql("SELECT missing FROM orders").status().IsNotFound());
}

TEST_F(BinderTest, JoinConditionsBecomeFilters) {
  Binder binder(&meta_);
  auto q = binder.BindSql(
      "SELECT o.id FROM orders o JOIN customer c ON o.cid = c.id "
      "WHERE o.amount > 10 AND c.name = 'bob'");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->relations.size(), 2u);
  EXPECT_EQ(q->filters.size(), 3u);  // join cond + two WHERE conjuncts
}

TEST_F(BinderTest, AggregateExtraction) {
  Binder binder(&meta_);
  auto q = binder.BindSql(
      "SELECT cid, sum(amount) AS total, count(*) FROM orders "
      "GROUP BY cid HAVING sum(amount) > 100 ORDER BY total DESC");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_TRUE(q->is_aggregate());
  // sum(amount) deduplicated between SELECT and HAVING.
  EXPECT_EQ(q->aggregates.size(), 2u);
  EXPECT_EQ(q->group_by.size(), 1u);
  ASSERT_TRUE(q->having != nullptr);
  // Select list: group col + two agg refs.
  EXPECT_EQ(q->select_exprs[0]->column, "orders.cid");
  EXPECT_EQ(q->select_exprs[1]->kind, Expr::Kind::kColumn);
}

TEST_F(BinderTest, LikeEscapeBinding) {
  Binder binder(&meta_);
  auto q = binder.BindSql(
      "SELECT name FROM customer WHERE name LIKE '100!%%' ESCAPE '!'");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->filters.size(), 1u);
  const ExprPtr& f = q->filters[0];
  EXPECT_EQ(f->kind, Expr::Kind::kLike);
  EXPECT_EQ(f->like_escape, '!');
  EXPECT_NE(f->ToString().find("ESCAPE '!'"), std::string::npos)
      << f->ToString();
  // Without the clause the escape stays unset.
  auto plain = binder.BindSql("SELECT name FROM customer WHERE name LIKE 'a%'");
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->filters[0]->like_escape, '\0');
}

TEST_F(BinderTest, LikeEscapeErrors) {
  Binder binder(&meta_);
  // Escape must be one character.
  EXPECT_TRUE(binder
                  .BindSql("SELECT name FROM customer WHERE name LIKE 'a%' "
                           "ESCAPE '!!'")
                  .status()
                  .IsInvalidArgument());
  // In the pattern, the escape must precede %, _, or itself.
  EXPECT_TRUE(binder
                  .BindSql("SELECT name FROM customer WHERE name LIKE 'a!b' "
                           "ESCAPE '!'")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(binder
                  .BindSql("SELECT name FROM customer WHERE name LIKE 'ab!' "
                           "ESCAPE '!'")
                  .status()
                  .IsInvalidArgument());
  // An escaped escape is fine.
  EXPECT_TRUE(binder
                  .BindSql("SELECT name FROM customer WHERE name LIKE 'a!!b' "
                           "ESCAPE '!'")
                  .ok());
}

TEST_F(BinderTest, NonGroupedColumnRejected) {
  Binder binder(&meta_);
  auto q = binder.BindSql("SELECT amount, count(*) FROM orders GROUP BY cid");
  EXPECT_TRUE(q.status().IsInvalidArgument()) << q.status().ToString();
}

TEST_F(BinderTest, TypeMismatchRejected) {
  Binder binder(&meta_);
  EXPECT_FALSE(binder.BindSql("SELECT id FROM orders WHERE id = 'x'").ok());
  EXPECT_FALSE(binder.BindSql("SELECT sum(name) FROM customer").ok());
}

TEST_F(BinderTest, DesugarsInAndBetween) {
  Binder binder(&meta_);
  auto q = binder.BindSql(
      "SELECT id FROM orders WHERE cid IN (1,2) AND amount BETWEEN 5 AND 9");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  // IN -> OR (1 conjunct), BETWEEN -> 2 conjuncts.
  EXPECT_EQ(q->filters.size(), 3u);
  EXPECT_EQ(q->filters[0]->kind, Expr::Kind::kOr);
}

TEST_F(BinderTest, DateLiteralBinding) {
  Binder binder(&meta_);
  auto q = binder.BindSql(
      "SELECT id FROM orders WHERE odate < DATE '2020-06-01'");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  std::string col;
  CompareOp op;
  Value constant;
  ASSERT_TRUE(MatchColumnCompareConstant(q->filters[0], &col, &op, &constant));
  EXPECT_EQ(col, "orders.odate");
  EXPECT_TRUE(constant.is_int());
}

TEST_F(BinderTest, SelectStarExpandsAllRelations) {
  Binder binder(&meta_);
  auto q = binder.BindSql("SELECT * FROM orders, customer");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->select_exprs.size(), 6u);
}

}  // namespace
}  // namespace costdb
