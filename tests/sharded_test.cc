#include <gtest/gtest.h>

#include <cmath>

#include "chunk_testing.h"

// Process-mode runs fork one child per worker; TSan's runtime does not
// support fork-then-continue children and reports spurious races, so the
// process-mode matrix legs skip under it.
#if defined(__SANITIZE_THREAD__)
#define COSTDB_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define COSTDB_TSAN 1
#endif
#endif

#include "common/rng.h"
#include "exec/sharded_engine.h"
#include "service/database.h"
#include "service/session.h"
#include "sim/harness.h"
#include "storage/partition.h"

namespace costdb {
namespace {

constexpr size_t kParts = 8;

/// Two databases over the same logical data: `plain` holds unpartitioned
/// tables (joins broadcast or shuffle), `part` holds the same rows
/// hash-partitioned on the join key (joins go partition-wise). A third,
/// `shuffled`, disables co-partitioning and broadcasting so repartition
/// joins are exercised.
class ShardedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DatabaseOptions plain_opts;
    plain_opts.enable_calibration = false;
    plain_ = std::make_unique<Database>(plain_opts);
    part_ = std::make_unique<Database>(plain_opts);
    DatabaseOptions shuffle_opts = plain_opts;
    shuffle_opts.optimizer.physical.enable_copartition = false;
    shuffle_opts.optimizer.physical.broadcast_threshold_bytes = 0.0;
    shuffled_ = std::make_unique<Database>(shuffle_opts);

    Rng rng(1234);
    DataChunk oc({LogicalType::kInt64, LogicalType::kInt64,
                  LogicalType::kDouble, LogicalType::kVarchar});
    const char* tags[] = {"red", "green", "blue", "amber"};
    for (int64_t i = 0; i < 20000; ++i) {
      oc.AppendRow({Value(i), Value(rng.UniformInt(0, 799)),
                    Value(rng.Uniform(0.0, 1000.0)),
                    Value(std::string(tags[rng.UniformInt(0, 3)]))});
    }
    DataChunk cc({LogicalType::kInt64, LogicalType::kVarchar,
                  LogicalType::kInt64});
    const char* regions[] = {"na", "emea", "apac"};
    for (int64_t k = 0; k < 800; ++k) {
      cc.AppendRow({Value(k), Value(std::string(regions[k % 3])),
                    Value(rng.UniformInt(0, 99))});
    }

    auto load = [&](Database* db, bool partitioned) {
      auto orders = std::make_shared<Table>(
          "orders", std::vector<ColumnDef>{{"id", LogicalType::kInt64},
                                           {"cust", LogicalType::kInt64},
                                           {"amount", LogicalType::kDouble},
                                           {"tag", LogicalType::kVarchar}},
          512);
      orders->Append(oc);
      auto customer = std::make_shared<Table>(
          "customer", std::vector<ColumnDef>{{"key", LogicalType::kInt64},
                                             {"region", LogicalType::kVarchar},
                                             {"score", LogicalType::kInt64}},
          128);
      customer->Append(cc);
      if (partitioned) {
        ASSERT_TRUE(PartitionTable(orders.get(),
                                   PartitionSpec::Hash("cust", kParts))
                        .ok());
        ASSERT_TRUE(PartitionTable(customer.get(),
                                   PartitionSpec::Hash("key", kParts))
                        .ok());
      }
      db->meta()->RegisterTable(orders);
      db->meta()->RegisterTable(customer);
      db->meta()->AnalyzeAll();
    };
    load(plain_.get(), false);
    load(part_.get(), true);
    load(shuffled_.get(), false);
  }

  /// Plan through the facade, execute on LocalEngine and on ShardedEngine
  /// at 1, 2, 4, and 7 workers; every result must be bit-identical.
  /// `exact == false` relaxes to multiset identity — the documented
  /// contract for bare repartition-join output, whose row order only
  /// canonicalizes at the next order-fixing operator.
  void ExpectDeterministicAcrossWorkers(Database* db, const std::string& sql,
                                        bool exact = true) {
    auto planned = db->PlanSql(sql, UserConstraint());
    ASSERT_TRUE(planned.ok()) << sql << ": " << planned.status().ToString();
    LocalEngine local(4);
    auto reference = local.Execute(planned->plan.get());
    ASSERT_TRUE(reference.ok()) << sql << ": "
                                << reference.status().ToString();
    for (size_t workers : {1u, 2u, 4u, 7u}) {
      ShardedEngine sharded(workers);
      auto result = sharded.Execute(planned->plan.get());
      ASSERT_TRUE(result.ok())
          << sql << " @" << workers << ": " << result.status().ToString();
      std::string why;
      const bool same =
          exact ? ChunksBitIdentical(reference->chunk, result->chunk, &why)
                : ChunksSameMultiset(reference->chunk, result->chunk, &why);
      EXPECT_TRUE(same) << sql << " diverged at " << workers
                        << " workers: " << why;
    }
  }

  std::unique_ptr<Database> plain_;
  std::unique_ptr<Database> part_;
  std::unique_ptr<Database> shuffled_;
};

TEST_F(ShardedTest, PartitionTableAlignsGroupsAndKeepsAllRows) {
  auto orders = *part_->meta()->GetTable("orders");
  const TablePartitioning* p = orders->partitioning();
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->spec.kind, PartitionKind::kHash);
  EXPECT_EQ(p->partitions(), kParts);
  ASSERT_EQ(p->group_begin.size(), kParts + 1);
  EXPECT_EQ(p->group_begin.front(), 0u);
  EXPECT_EQ(p->group_begin.back(), orders->row_groups().size());
  EXPECT_EQ(orders->num_rows(), 20000u);
  // Every row sits in the partition its key hashes to.
  size_t cust_col = *orders->ColumnIndex("cust");
  for (size_t part = 0; part < kParts; ++part) {
    for (size_t g = p->group_begin[part]; g < p->group_begin[part + 1]; ++g) {
      const auto& col = orders->row_groups()[g].data.column(cust_col);
      for (size_t r = 0; r < col.size(); ++r) {
        EXPECT_EQ(HashPartitionOf(col.GetValue(r), kParts), part);
      }
    }
  }
  // Worker shares cover whole partitions, contiguously and exhaustively.
  for (size_t workers : {1u, 3u, 8u}) {
    size_t expect_begin = 0;
    for (size_t w = 0; w < workers; ++w) {
      auto [b, e] = WorkerGroupRange(*orders, w, workers);
      EXPECT_EQ(b, expect_begin);
      expect_begin = e;
    }
    EXPECT_EQ(expect_begin, orders->row_groups().size());
  }
}

TEST_F(ShardedTest, RangePartitionKeepsEqualKeysTogether) {
  auto t = std::make_shared<Table>(
      "r", std::vector<ColumnDef>{{"k", LogicalType::kInt64}}, 64);
  DataChunk c({LogicalType::kInt64});
  for (int64_t i = 0; i < 1000; ++i) c.AppendRow({Value(i % 7)});
  t->Append(c);
  ASSERT_TRUE(PartitionTable(t.get(), PartitionSpec::Range("k", 4)).ok());
  const TablePartitioning* p = t->partitioning();
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(t->num_rows(), 1000u);
  // Each distinct key appears in exactly one partition.
  std::map<int64_t, size_t> owner;
  for (size_t part = 0; part < 4; ++part) {
    for (size_t g = p->group_begin[part]; g < p->group_begin[part + 1]; ++g) {
      const auto& col = t->row_groups()[g].data.column(0);
      for (size_t r = 0; r < col.size(); ++r) {
        auto [it, inserted] = owner.emplace(col.GetInt(r), part);
        EXPECT_EQ(it->second, part) << "key " << col.GetInt(r);
      }
    }
  }
  EXPECT_EQ(owner.size(), 7u);
}

TEST_F(ShardedTest, RangePartitionHandlesDuplicateHeavyAndAllEqualKeys) {
  // Partitions > distinct keys: tie runs are consumed whole, later
  // partitions stay empty, and the group_begin boundaries must remain a
  // monotone exact cover of the row groups so worker scan shares stay
  // aligned (regression for RangeBuckets on heavily-duplicated columns).
  struct Case {
    std::vector<int64_t> keys;
    size_t partitions;
  };
  std::vector<Case> cases;
  cases.push_back({std::vector<int64_t>(1000, 42), 4});  // all equal
  {
    std::vector<int64_t> heavy;  // 3 distinct keys, 8 partitions
    for (int64_t i = 0; i < 900; ++i) heavy.push_back(i % 3 == 0 ? 7 : i % 3);
    cases.push_back({std::move(heavy), 8});
  }
  cases.push_back({{5, 5, 5}, 8});  // more partitions than rows
  for (const auto& c : cases) {
    auto t = std::make_shared<Table>(
        "r", std::vector<ColumnDef>{{"k", LogicalType::kInt64}}, 64);
    DataChunk chunk({LogicalType::kInt64});
    for (int64_t k : c.keys) chunk.AppendRow({Value(k)});
    t->Append(chunk);
    ASSERT_TRUE(
        PartitionTable(t.get(), PartitionSpec::Range("k", c.partitions)).ok());
    const TablePartitioning* p = t->partitioning();
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(t->num_rows(), c.keys.size());
    ASSERT_EQ(p->group_begin.size(), c.partitions + 1);
    EXPECT_EQ(p->group_begin.front(), 0u);
    EXPECT_EQ(p->group_begin.back(), t->row_groups().size());
    for (size_t i = 1; i < p->group_begin.size(); ++i) {
      EXPECT_LE(p->group_begin[i - 1], p->group_begin[i]);
    }
    // Each distinct key lives in exactly one partition.
    std::map<int64_t, size_t> owner;
    for (size_t part = 0; part < c.partitions; ++part) {
      for (size_t g = p->group_begin[part]; g < p->group_begin[part + 1];
           ++g) {
        const auto& col = t->row_groups()[g].data.column(0);
        for (size_t r = 0; r < col.size(); ++r) {
          auto [it, inserted] = owner.emplace(col.GetInt(r), part);
          EXPECT_EQ(it->second, part) << "key " << col.GetInt(r);
        }
      }
    }
    // Worker shares cover the groups contiguously and exhaustively at any
    // width, empty partitions included.
    for (size_t workers : {1u, 2u, 3u, 5u, 11u}) {
      size_t expect_begin = 0;
      for (size_t w = 0; w < workers; ++w) {
        auto [b, e] = WorkerGroupRange(*t, w, workers);
        EXPECT_EQ(b, expect_begin);
        expect_begin = e;
      }
      EXPECT_EQ(expect_begin, t->row_groups().size());
    }
  }
}

TEST_F(ShardedTest, RangePartitionedAllEqualTableAnswersAcrossWorkers) {
  // End to end: an all-equal range-partitioned key column leaves most
  // workers with empty shares; queries must still be bit-identical to
  // LocalEngine at every width.
  DatabaseOptions opts;
  opts.enable_calibration = false;
  Database db(opts);
  auto t = std::make_shared<Table>(
      "dup", std::vector<ColumnDef>{{"k", LogicalType::kInt64},
                                    {"v", LogicalType::kInt64}},
      64);
  DataChunk chunk({LogicalType::kInt64, LogicalType::kInt64});
  for (int64_t i = 0; i < 2000; ++i) chunk.AppendRow({Value(int64_t{9}), Value(i)});
  t->Append(chunk);
  ASSERT_TRUE(PartitionTable(t.get(), PartitionSpec::Range("k", 6)).ok());
  db.meta()->RegisterTable(t);
  db.meta()->AnalyzeAll();
  ExpectDeterministicAcrossWorkers(
      &db, "SELECT k, count(*) AS c, sum(v) AS s FROM dup GROUP BY k");
  ExpectDeterministicAcrossWorkers(&db,
                                   "SELECT v FROM dup WHERE v < 100");
}

TEST_F(ShardedTest, NullJoinKeysMatchNothingAcrossEnginesAndWorkers) {
  // NULL join keys must behave per SQL three-valued logic: they match
  // nothing — in particular they must not collide with genuine 0 keys
  // (the NULL payload filler) — and NULL-key rows must shuffle to one
  // deterministic bucket so no plan shape can split or duplicate them.
  DatabaseOptions opts;
  opts.enable_calibration = false;
  Database db(opts);
  DatabaseOptions shuffle_opts = opts;
  shuffle_opts.optimizer.physical.enable_copartition = false;
  shuffle_opts.optimizer.physical.broadcast_threshold_bytes = 0.0;
  Database shuffled(shuffle_opts);

  Rng rng(77);
  DataChunk fact({LogicalType::kInt64, LogicalType::kInt64,
                  LogicalType::kDouble});
  for (int64_t i = 0; i < 4000; ++i) {
    // ~15% NULL keys, and plenty of genuine 0 keys to collide with.
    Value key = rng.NextDouble() < 0.15
                    ? Value::Null()
                    : Value(rng.UniformInt(0, 49));
    fact.AppendRow({Value(i), key, Value(rng.Uniform(0.0, 100.0))});
  }
  DataChunk dim({LogicalType::kInt64, LogicalType::kInt64});
  for (int64_t k = 0; k < 50; ++k) {
    Value key = k % 10 == 3 ? Value::Null() : Value(k);
    dim.AppendRow({key, Value(k * 100)});
  }
  for (Database* d : {&db, &shuffled}) {
    auto f = std::make_shared<Table>(
        "fact", std::vector<ColumnDef>{{"id", LogicalType::kInt64},
                                       {"key", LogicalType::kInt64},
                                       {"x", LogicalType::kDouble}},
        256);
    f->Append(fact);
    auto m = std::make_shared<Table>(
        "dim", std::vector<ColumnDef>{{"k", LogicalType::kInt64},
                                      {"score", LogicalType::kInt64}},
        64);
    m->Append(dim);
    d->meta()->RegisterTable(f);
    d->meta()->RegisterTable(m);
    d->meta()->AnalyzeAll();
  }

  // Ground truth by brute force over the source chunks.
  size_t expected_pairs = 0;
  for (size_t i = 0; i < fact.num_rows(); ++i) {
    if (fact.column(1).IsNull(i)) continue;
    for (size_t j = 0; j < dim.num_rows(); ++j) {
      if (dim.column(0).IsNull(j)) continue;
      if (fact.column(1).GetInt(i) == dim.column(0).GetInt(j)) {
        ++expected_pairs;
      }
    }
  }
  ASSERT_GT(expected_pairs, 0u);

  const std::string join_sql =
      "SELECT f.id, d.score FROM fact f JOIN dim d ON f.key = d.k";
  auto planned = db.PlanSql(join_sql, UserConstraint());
  ASSERT_TRUE(planned.ok());
  LocalEngine local(4);
  auto reference = local.Execute(planned->plan.get());
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(reference->chunk.num_rows(), expected_pairs);
  for (size_t workers : {1u, 2u, 4u, 7u}) {
    ShardedEngine sharded(workers);
    auto result = sharded.Execute(planned->plan.get());
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    std::string why;
    EXPECT_TRUE(ChunksBitIdentical(reference->chunk, result->chunk, &why))
        << workers << " workers: " << why;
  }

  // Repartition join: both sides shuffle on the key, so NULL rows cross
  // the shuffle path too; the grouped aggregate above canonicalizes
  // order. The NULL group must appear exactly once per distinct key side.
  const std::string agg_sql =
      "SELECT d.score, count(*) AS n FROM fact f JOIN dim d "
      "ON f.key = d.k GROUP BY d.score";
  auto agg_planned = shuffled.PlanSql(agg_sql, UserConstraint());
  ASSERT_TRUE(agg_planned.ok());
  auto agg_reference = local.Execute(agg_planned->plan.get());
  ASSERT_TRUE(agg_reference.ok());
  for (size_t workers : {2u, 4u, 7u}) {
    ShardedEngine sharded(workers);
    auto result = sharded.Execute(agg_planned->plan.get());
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    std::string why;
    EXPECT_TRUE(
        ChunksBitIdentical(agg_reference->chunk, result->chunk, &why))
        << workers << " workers: " << why;
  }

  // Grouping by the NULL-bearing key itself: the NULL group must not be
  // split across workers by the shuffle (one output row, same as local).
  const std::string group_sql =
      "SELECT key, count(*) AS n, sum(id) AS s FROM fact GROUP BY key";
  auto group_planned = db.PlanSql(group_sql, UserConstraint());
  ASSERT_TRUE(group_planned.ok());
  auto group_reference = local.Execute(group_planned->plan.get());
  ASSERT_TRUE(group_reference.ok());
  for (size_t workers : {2u, 4u, 7u}) {
    ShardedEngine sharded(workers);
    auto result = sharded.Execute(group_planned->plan.get());
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    std::string why;
    EXPECT_TRUE(
        ChunksBitIdentical(group_reference->chunk, result->chunk, &why))
        << workers << " workers: " << why;
  }
}

TEST_F(ShardedTest, ScanFilterProjectBitIdenticalAcrossWorkers) {
  ExpectDeterministicAcrossWorkers(
      plain_.get(), "SELECT id, amount FROM orders WHERE amount > 750.0");
  ExpectDeterministicAcrossWorkers(
      part_.get(),
      "SELECT id, tag FROM orders WHERE cust < 100 AND amount <= 500.0");
  ExpectDeterministicAcrossWorkers(plain_.get(),
                                   "SELECT id FROM orders WHERE tag = 'red'");
}

TEST_F(ShardedTest, AggregatesBitIdenticalAcrossWorkers) {
  // Integer SUM/COUNT and MIN/MAX are exactly associative, AVG of an int
  // column divides two exact partials — all bit-stable across any worker
  // partitioning. (SUM over doubles re-associates and is deliberately not
  // asserted bit-identical; see sharded_engine.h.)
  ExpectDeterministicAcrossWorkers(
      plain_.get(),
      "SELECT cust, count(*) AS c, sum(id) AS s, min(amount) AS mn, "
      "max(tag) AS mx, avg(id) AS a FROM orders GROUP BY cust");
  ExpectDeterministicAcrossWorkers(
      part_.get(),
      "SELECT cust, count(*) AS c, sum(id) AS s FROM orders GROUP BY cust");
  ExpectDeterministicAcrossWorkers(
      plain_.get(),
      "SELECT count(*), sum(id), min(amount), max(amount) FROM orders "
      "WHERE amount > 400.0");
  ExpectDeterministicAcrossWorkers(
      plain_.get(), "SELECT tag, count(*) AS c FROM orders GROUP BY tag");
}

TEST_F(ShardedTest, JoinsBitIdenticalAcrossWorkers) {
  // Broadcast join (plain: small build side) and partition-wise join
  // (part_: co-partitioned on the key) both preserve probe order.
  const std::string join_sql =
      "SELECT o.id, c.region FROM orders o JOIN customer c ON o.cust = c.key "
      "WHERE o.amount > 900.0";
  ExpectDeterministicAcrossWorkers(plain_.get(), join_sql);
  ExpectDeterministicAcrossWorkers(part_.get(), join_sql);
  // Repartition join: canonical under the grouped aggregate above it.
  ExpectDeterministicAcrossWorkers(
      shuffled_.get(),
      "SELECT c.region, count(*) AS n, sum(o.id) AS s FROM orders o "
      "JOIN customer c ON o.cust = c.key GROUP BY c.region");
}

TEST_F(ShardedTest, FusedPipelinesBitIdenticalAcrossWorkers) {
  // Force the fused execution tier on (regardless of the cost model's
  // verdict for this small catalog) and require every worker count to
  // reproduce the interpreted reference bit-for-bit. The sharded engine
  // runs one fused dispatch per worker morsel, so this is the densest
  // cross-thread exercise of the shared kernel registry.
  struct AnnotateFusable {
    static void Apply(PhysicalPlan* n) {
      if (n == nullptr) return;
      for (auto& c : n->children) Apply(c.get());
      if (n->kind == PhysicalPlan::Kind::kTableScan &&
          !n->scan_filters.empty()) {
        n->fuse_scan_filter = true;
      }
      if (n->kind == PhysicalPlan::Kind::kHashAggregate &&
          n->group_by.empty()) {
        n->fuse_aggregate = true;
      }
      if (n->kind == PhysicalPlan::Kind::kHashJoin) n->fuse_probe = true;
    }
  };
  const char* queries[] = {
      // fused select+gather off the scan's borrowed columns
      "SELECT id, amount FROM orders WHERE id < 5000 AND cust >= 100",
      // fused filter -> global aggregate fold. Integer SUM and double
      // MIN/MAX are exactly associative; SUM over doubles re-associates
      // across worker counts and is deliberately not asserted here (see
      // AggregatesBitIdenticalAcrossWorkers).
      "SELECT count(*) AS n, sum(id) AS s, min(amount) AS lo, "
      "max(amount) AS hi "
      "FROM orders WHERE amount > 100.0 AND amount < 900.0 AND cust >= 10",
  };
  for (const char* sql : queries) {
    auto planned = plain_->PlanSql(sql, UserConstraint());
    ASSERT_TRUE(planned.ok()) << sql << ": " << planned.status().ToString();
    AnnotateFusable::Apply(planned->plan.get());
    LocalEngine local(4);
    auto reference = local.Execute(planned->plan.get());
    ASSERT_TRUE(reference.ok()) << sql;
    EXPECT_TRUE(local.last_fused_stats().any_fused()) << sql;
    for (size_t workers : {1u, 2u, 4u, 7u}) {
      ShardedEngine sharded(workers);
      auto result = sharded.Execute(planned->plan.get());
      ASSERT_TRUE(result.ok())
          << sql << " @" << workers << ": " << result.status().ToString();
      EXPECT_TRUE(sharded.last_fused_stats().any_fused())
          << sql << " @" << workers << " fell back to interpreted";
      std::string why;
      EXPECT_TRUE(ChunksBitIdentical(reference->chunk, result->chunk, &why))
          << sql << " diverged at " << workers << " workers: " << why;
    }
  }
}

TEST_F(ShardedTest, AggregatesOverShardEmptyingFiltersAcrossWorkers) {
  // id < 100 keeps rows only in the first worker's slice (plain_ orders
  // is id-ordered): the other workers' partial aggregates see zero rows
  // after filtering. A fabricated zero-filled partial from an empty
  // shard would poison global MIN/MAX (min(amount) -> 0.0, max(tag) ->
  // ""), so partials must emit nothing on empty input.
  ExpectDeterministicAcrossWorkers(
      plain_.get(),
      "SELECT min(amount), max(amount), max(tag), count(*), sum(id) "
      "FROM orders WHERE id < 100");
  ExpectDeterministicAcrossWorkers(
      plain_.get(),
      "SELECT cust, min(amount), max(tag) FROM orders WHERE id < 100 "
      "GROUP BY cust");
  ExpectDeterministicAcrossWorkers(
      part_.get(),
      "SELECT min(amount), max(amount), count(*) FROM orders "
      "WHERE cust = 3");
}

TEST_F(ShardedTest, SortLimitAndEmptyResultsAcrossWorkers) {
  ExpectDeterministicAcrossWorkers(
      plain_.get(),
      "SELECT id, amount FROM orders WHERE amount > 990.0 ORDER BY id DESC "
      "LIMIT 50");
  ExpectDeterministicAcrossWorkers(plain_.get(),
                                   "SELECT id FROM orders LIMIT 37");
  ExpectDeterministicAcrossWorkers(
      plain_.get(), "SELECT id FROM orders WHERE amount < -1.0");
  ExpectDeterministicAcrossWorkers(
      plain_.get(),
      "SELECT count(*), sum(id) FROM orders WHERE amount < -1.0");
  ExpectDeterministicAcrossWorkers(
      plain_.get(),
      "SELECT cust, count(*) AS c FROM orders WHERE amount < -1.0 "
      "GROUP BY cust");
}

TEST_F(ShardedTest, RandomizedQueriesBitIdenticalAcrossWorkers) {
  // Property sweep: randomized filters, group keys, and join shapes on all
  // three catalogs must agree with LocalEngine bit-for-bit at 1/2/4/7
  // workers.
  Rng rng(99);
  const char* group_cols[] = {"cust", "tag"};
  for (int trial = 0; trial < 12; ++trial) {
    double lo = rng.Uniform(0.0, 900.0);
    int64_t cust_cut = rng.UniformInt(1, 799);
    const char* g = group_cols[rng.UniformInt(0, 1)];
    char sql[512];
    switch (trial % 4) {
      case 0:
        std::snprintf(sql, sizeof(sql),
                      "SELECT id, cust FROM orders WHERE amount > %.3f AND "
                      "cust < %lld",
                      lo, static_cast<long long>(cust_cut));
        break;
      case 1:
        std::snprintf(sql, sizeof(sql),
                      "SELECT %s, count(*) AS c, sum(id) AS s, max(amount) "
                      "AS m FROM orders WHERE amount > %.3f GROUP BY %s",
                      g, lo, g);
        break;
      case 2:
        std::snprintf(sql, sizeof(sql),
                      "SELECT o.id, c.score FROM orders o JOIN customer c "
                      "ON o.cust = c.key WHERE o.amount > %.3f",
                      lo);
        break;
      default:
        std::snprintf(sql, sizeof(sql),
                      "SELECT c.region, sum(o.id) AS s FROM orders o JOIN "
                      "customer c ON o.cust = c.key WHERE o.cust < %lld "
                      "GROUP BY c.region",
                      static_cast<long long>(cust_cut));
        break;
    }
    ExpectDeterministicAcrossWorkers(plain_.get(), sql);
    ExpectDeterministicAcrossWorkers(part_.get(), sql);
    // On the forced-shuffle catalog a bare join repartitions its probe
    // side, so row order is only canonical up to the next aggregate —
    // exact for every other template, multiset for the bare join.
    ExpectDeterministicAcrossWorkers(shuffled_.get(), sql,
                                     /*exact=*/trial % 4 != 2);
  }
}

TEST_F(ShardedTest, CoPartitionedJoinMovesNoBytesAndShuffleMoves) {
  const std::string sql =
      "SELECT c.region, sum(o.id) AS s FROM orders o JOIN customer c "
      "ON o.cust = c.key GROUP BY c.region";
  auto co = part_->PlanSql(sql, UserConstraint());
  ASSERT_TRUE(co.ok());
  // The optimizer picked the partition-wise plan: kLocal exchanges on the
  // join, and a cheaper estimate than the forced-shuffle plan.
  std::string plan_str = co->plan->ToString();
  EXPECT_NE(plan_str.find("Exchange Local"), std::string::npos) << plan_str;
  auto sh = shuffled_->PlanSql(sql, UserConstraint());
  ASSERT_TRUE(sh.ok());
  EXPECT_NE(sh->plan->ToString().find("Exchange Shuffle"), std::string::npos);

  // The cost model agrees with the pick: the co-partitioned plan is
  // estimated no slower and no dearer than the forced-shuffle plan.
  EXPECT_LE(co->estimate.latency, sh->estimate.latency);
  EXPECT_LE(co->estimate.cost, sh->estimate.cost);

  ShardedEngine co_engine(4);
  ASSERT_TRUE(co_engine.Execute(co->plan.get()).ok());
  ShardedEngine sh_engine(4);
  ASSERT_TRUE(sh_engine.Execute(sh->plan.get()).ok());
  const ExchangeStats& co_stats = co_engine.last_exchange_stats();
  const ExchangeStats& sh_stats = sh_engine.last_exchange_stats();
  // The co-partitioned plan still shuffles its handful of per-worker
  // aggregate partials; the join rows themselves never move, so it moves
  // orders of magnitude less than the repartition plan.
  EXPECT_GT(sh_stats.shuffle.count, 0u);
  EXPECT_LT(co_stats.rows_moved() * 100, sh_stats.rows_moved());
  EXPECT_LT(co_stats.bytes_moved(), sh_stats.bytes_moved());
}

TEST_F(ShardedTest, StaleCoPartitionedPlanFailsLoudly) {
  const std::string sql =
      "SELECT c.region, sum(o.id) AS s FROM orders o JOIN customer c "
      "ON o.cust = c.key GROUP BY c.region";
  auto planned = part_->PlanSql(sql, UserConstraint());
  ASSERT_TRUE(planned.ok());
  ASSERT_NE(planned->plan->ToString().find("Exchange Local"),
            std::string::npos);
  // Appending after planning drops the partitioning metadata; running the
  // partition-wise plan now would join mis-aligned shards, so the engine
  // must refuse instead of returning wrong rows.
  auto orders = *part_->meta()->GetTable("orders");
  DataChunk extra({LogicalType::kInt64, LogicalType::kInt64,
                   LogicalType::kDouble, LogicalType::kVarchar});
  extra.AppendRow({Value(int64_t{20000}), Value(int64_t{5}), Value(1.0),
                   Value(std::string("red"))});
  orders->Append(extra);
  ShardedEngine engine(4);
  auto result = engine.Execute(planned->plan.get());
  EXPECT_FALSE(result.ok());
  // Restore the partitioned layout for the remaining tests' shared data.
  ASSERT_TRUE(
      PartitionTable(orders.get(), PartitionSpec::Hash("cust", kParts)).ok());

  // Same partition *count* but a different key column is just as
  // mis-aligned — the recorded partition key must catch it.
  auto customer = *part_->meta()->GetTable("customer");
  ASSERT_TRUE(
      PartitionTable(customer.get(), PartitionSpec::Hash("score", kParts))
          .ok());
  auto rekeyed = engine.Execute(planned->plan.get());
  EXPECT_FALSE(rekeyed.ok());
  ASSERT_TRUE(
      PartitionTable(customer.get(), PartitionSpec::Hash("key", kParts)).ok());
  EXPECT_TRUE(engine.Execute(planned->plan.get()).ok());
}

TEST_F(ShardedTest, LayoutChangeInvalidatesCachedPlanAndReplans) {
  // Through the facade the stale guard must never be terminal: the plan
  // cache validates table layout versions on every hit, so a repartition
  // evicts the co-partitioned plan and the query replans and succeeds.
  const std::string sql =
      "SELECT c.region, sum(o.id) AS s FROM orders o JOIN customer c "
      "ON o.cust = c.key GROUP BY c.region";
  auto first = part_->ExecuteSql(sql, UserConstraint().WithWorkers(4));
  ASSERT_TRUE(first.ok());
  auto again = part_->ExecuteSql(sql, UserConstraint().WithWorkers(4));
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->plan_cache_hit);

  auto customer = *part_->meta()->GetTable("customer");
  ASSERT_TRUE(
      PartitionTable(customer.get(), PartitionSpec::Hash("score", kParts))
          .ok());
  auto after = part_->ExecuteSql(sql, UserConstraint().WithWorkers(4));
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_FALSE(after->plan_cache_hit);  // layout change forced a replan
  // The replanned query no longer joins partition-wise (sides are not
  // co-partitioned on the join key any more) but still answers right.
  std::string why;
  EXPECT_TRUE(
      ChunksBitIdentical(first->result.chunk, after->result.chunk, &why))
      << why;
  ASSERT_TRUE(
      PartitionTable(customer.get(), PartitionSpec::Hash("key", kParts)).ok());
}

TEST_F(ShardedTest, FacadeRoutesWorkerKnobToShardedEngine) {
  const std::string sql = "SELECT cust, sum(id) AS s FROM orders GROUP BY cust";
  auto one = plain_->ExecuteSql(sql, UserConstraint());
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(one->workers, 1u);
  EXPECT_TRUE(one->exchange.timings.empty());

  auto four = plain_->ExecuteSql(sql, UserConstraint().WithWorkers(4));
  ASSERT_TRUE(four.ok());
  EXPECT_EQ(four->workers, 4u);
  EXPECT_FALSE(four->exchange.timings.empty());
  std::string why;
  EXPECT_TRUE(
      ChunksBitIdentical(one->result.chunk, four->result.chunk, &why)) << why;

  // Auto mode resolves to the DOP plan's parallelism (>= 1).
  auto planned = plain_->PlanSql(sql, UserConstraint().WithWorkers(0));
  ASSERT_TRUE(planned.ok());
  EXPECT_GE(planned->workers, 1);
}

TEST_F(ShardedTest, ExplicitWorkerRequestClampedToFacadeCap) {
  DatabaseOptions opts;
  opts.enable_calibration = false;
  opts.max_workers = 1;
  Database db(opts);
  db.meta()->RegisterTable(*plain_->meta()->GetTable("orders"));
  db.meta()->RegisterTable(*plain_->meta()->GetTable("customer"));
  db.meta()->AnalyzeAll();
  const std::string sql = "SELECT cust, sum(id) AS s FROM orders GROUP BY cust";
  // An explicit request above the cap runs clamped — on both the
  // synchronous and the asynchronous (engine-lazy) path — not erroring.
  Session session(&db);
  auto sync = session.ExecuteSql(sql, UserConstraint().WithWorkers(4));
  ASSERT_TRUE(sync.ok()) << sync.status().ToString();
  EXPECT_EQ(sync->workers, 1u);
  Session::SubmitOptions submit;
  submit.constraint = UserConstraint().WithWorkers(4);
  auto handle = session.Submit(sql, submit);
  ASSERT_TRUE(handle.ok());
  auto taken = (*handle)->Take();
  ASSERT_TRUE(taken.ok()) << taken.status().ToString();
  std::string why;
  EXPECT_TRUE(ChunksBitIdentical(sync->result.chunk, taken->result.chunk,
                                 &why)) << why;
}

TEST_F(ShardedTest, SessionWorkerKnobAndStreamingSubmit) {
  Session session(part_.get());
  auto handle = session.Submit(
      "SELECT cust, count(*) AS c FROM orders GROUP BY cust");
  ASSERT_TRUE(handle.ok());
  ASSERT_TRUE((*handle)->Wait().ok());

  SessionOptions opts;
  opts.default_constraint = UserConstraint().WithWorkers(4);
  Session wide(part_.get(), opts);
  auto sync = wide.ExecuteSql("SELECT cust, count(*) AS c FROM orders "
                              "GROUP BY cust");
  ASSERT_TRUE(sync.ok());
  EXPECT_EQ(sync->workers, 4u);
  auto async = wide.Submit("SELECT cust, count(*) AS c FROM orders "
                           "GROUP BY cust");
  ASSERT_TRUE(async.ok());
  auto taken = (*async)->Take();
  ASSERT_TRUE(taken.ok());
  std::string why;
  EXPECT_TRUE(ChunksBitIdentical(sync->result.chunk, taken->result.chunk,
                                 &why)) << why;
}

TEST_F(ShardedTest, ShuffleCalibrationTightensWithObservations) {
  DatabaseOptions opts;
  opts.enable_calibration = true;
  Database db(opts);
  auto orders = *plain_->meta()->GetTable("orders");
  auto customer = *plain_->meta()->GetTable("customer");
  db.meta()->RegisterTable(orders);
  db.meta()->RegisterTable(customer);
  db.meta()->AnalyzeAll();

  const std::string sql =
      "SELECT cust, count(*) AS c FROM orders GROUP BY cust";
  const double gibps_before = db.hardware()->shuffle_gibps;
  CalibrationReport last;
  for (int i = 0; i < 4; ++i) {
    auto r = db.ExecuteSql(sql, UserConstraint().WithWorkers(4));
    ASSERT_TRUE(r.ok());
    last = r->calibration;
    ASSERT_GT(last.pipelines_observed, 0);
  }
  // The EWMA drives predictions toward measurements: the post-round
  // q-error never exceeds the pre-round one, and the shuffle term moved.
  EXPECT_LE(last.q_error_after, last.q_error_before * 1.0001);
  EXPECT_NE(db.hardware()->shuffle_gibps, gibps_before);
  EXPECT_NE(db.calibration().shuffle_total_scale(), 1.0);
}

TEST_F(ShardedTest, BitIdenticalAcrossTransportsAndWorkerModes) {
  // The full distribution matrix: {in-process, socket} transports x
  // {threads, processes} worker modes x {1, 2, 4, 7} widths. At a fixed
  // width, the transport serializes every moved partition through the
  // checksummed wire format and process mode ships whole fragment results
  // between address spaces — neither may change a single byte relative to
  // the in-process/threads engine at that width, even for plans whose
  // double aggregates are association-sensitive. Order-stable plans (no
  // floating-point re-association across partials) must additionally match
  // the LocalEngine reference at every width.
  struct MatrixQuery {
    std::string sql;
    // sum(amount) over doubles re-associates across worker partials, so
    // its result is a function of the partitioning width; it still must be
    // invariant to transport and worker mode at any given width.
    bool order_stable;
  };
  const MatrixQuery queries[] = {
      {"SELECT tag, count(*) AS c, sum(amount) AS s FROM orders "
       "GROUP BY tag",
       false},
      {"SELECT c.region, sum(o.id) AS s FROM orders o JOIN customer c "
       "ON o.cust = c.key GROUP BY c.region",
       true},
      {"SELECT id, cust, amount FROM orders WHERE amount > 900.0", true},
  };
  for (const MatrixQuery& q : queries) {
    auto planned = shuffled_->PlanSql(q.sql, UserConstraint());
    ASSERT_TRUE(planned.ok())
        << q.sql << ": " << planned.status().ToString();
    LocalEngine local(4);
    auto reference = local.Execute(planned->plan.get());
    ASSERT_TRUE(reference.ok());
    for (size_t workers : {1u, 2u, 4u, 7u}) {
      // The width-reference leg every other transport x mode combination
      // must reproduce byte-for-byte.
      ShardedEngineOptions base_options;
      base_options.workers = workers;
      ShardedEngine base_engine(base_options);
      auto base = base_engine.Execute(planned->plan.get());
      ASSERT_TRUE(base.ok()) << q.sql << " @" << workers << ": "
                             << base.status().ToString();
      if (q.order_stable) {
        std::string why;
        EXPECT_TRUE(ChunksBitIdentical(reference->chunk, base->chunk, &why))
            << q.sql << " diverged from LocalEngine @" << workers << ": "
            << why;
      }
      for (TransportKind transport :
           {TransportKind::kInProcess, TransportKind::kSocket}) {
        for (WorkerMode mode :
             {WorkerMode::kThreads, WorkerMode::kProcesses}) {
#ifdef COSTDB_TSAN
          if (mode == WorkerMode::kProcesses) continue;
#endif
          if (transport == TransportKind::kInProcess &&
              mode == WorkerMode::kThreads) {
            continue;  // that is the width-reference leg itself
          }
          ShardedEngineOptions options;
          options.workers = workers;
          options.transport = transport;
          options.worker_mode = mode;
          ShardedEngine engine(options);
          auto result = engine.Execute(planned->plan.get());
          ASSERT_TRUE(result.ok())
              << q.sql << " @" << workers << " " << TransportName(transport)
              << "/" << WorkerModeName(mode) << ": "
              << result.status().ToString();
          std::string why;
          EXPECT_TRUE(ChunksBitIdentical(base->chunk, result->chunk, &why))
              << q.sql << " diverged @" << workers << " "
              << TransportName(transport) << "/" << WorkerModeName(mode)
              << ": " << why;
        }
      }
    }
  }
}

TEST_F(ShardedTest, SocketTransportRecordsWireBytesAndLinkSeconds) {
  const std::string sql =
      "SELECT cust, count(*) AS c, sum(amount) AS s FROM orders GROUP BY "
      "cust";
  auto planned = plain_->PlanSql(sql, UserConstraint());
  ASSERT_TRUE(planned.ok());

  ShardedEngineOptions socket_options;
  socket_options.workers = 4;
  socket_options.transport = TransportKind::kSocket;
  ShardedEngine socket_engine(socket_options);
  ASSERT_TRUE(socket_engine.Execute(planned->plan.get()).ok());
  const ExchangeStats& socket_stats = socket_engine.last_exchange_stats();
  EXPECT_EQ(socket_stats.transport, TransportKind::kSocket);
  EXPECT_GT(socket_stats.wire_bytes(), 0.0);
  EXPECT_GT(socket_stats.link_seconds(), 0.0);
  // The per-exchange timings carry the same decomposition.
  bool any_wire_timing = false;
  for (const ExchangeTiming& t : socket_stats.timings) {
    if (t.wire_bytes > 0.0) {
      any_wire_timing = true;
      EXPECT_EQ(t.transport, TransportKind::kSocket);
      EXPECT_GT(t.transfers, 0u);
      EXPECT_LE(t.link_seconds, t.seconds + 1e-9);
    }
  }
  EXPECT_TRUE(any_wire_timing);
  // The engine-level transport counters agree: socket bytes are the wire
  // bodies plus one 8-byte length prefix per transfer.
  const TransportStats& tp = socket_engine.transport_stats();
  EXPECT_EQ(tp.socket_bytes, tp.wire_bytes + 8.0 * tp.transfers);

  ShardedEngine inproc_engine(4);
  ASSERT_TRUE(inproc_engine.Execute(planned->plan.get()).ok());
  const ExchangeStats& inproc_stats = inproc_engine.last_exchange_stats();
  EXPECT_EQ(inproc_stats.transport, TransportKind::kInProcess);
  EXPECT_EQ(inproc_stats.wire_bytes(), 0.0);
  EXPECT_EQ(inproc_stats.link_seconds(), 0.0);
  // Same logical movement either way: the transport changes how
  // partitions travel, never how many.
  EXPECT_EQ(inproc_stats.rows_moved(), socket_stats.rows_moved());
  EXPECT_EQ(inproc_stats.bytes_moved(), socket_stats.bytes_moved());
}

TEST_F(ShardedTest, ShardedParityFillsLinkFieldsOverSocketTransport) {
  const std::string sql =
      "SELECT cust, count(*) AS c FROM orders GROUP BY cust";
  auto prepared = plain_->Prepare(sql, UserConstraint());
  ASSERT_TRUE(prepared.ok());

  auto run = [&](TransportKind transport) {
    ShardedEngineOptions options;
    options.workers = 4;
    options.transport = transport;
    ShardedEngine engine(options);
    EXPECT_TRUE(engine.Execute(prepared->planned.plan.get()).ok());
    return CheckShardedParity(*prepared, *plain_->estimator(), 4,
                              /*measured_single=*/0.01,
                              /*measured_sharded=*/0.01,
                              engine.last_exchange_stats());
  };

  ShardedParity socket_parity = run(TransportKind::kSocket);
  EXPECT_GT(socket_parity.measured_wire_bytes, 0.0);
  EXPECT_GT(socket_parity.measured_link_seconds, 0.0);
  EXPECT_GT(socket_parity.predicted_link_seconds, 0.0);
  EXPECT_GE(socket_parity.link_q_error, 1.0);

  // In-process runs have no link: every link field stays at its neutral
  // default so existing parity consumers see exactly the old behavior.
  ShardedParity inproc_parity = run(TransportKind::kInProcess);
  EXPECT_EQ(inproc_parity.measured_wire_bytes, 0.0);
  EXPECT_EQ(inproc_parity.measured_link_seconds, 0.0);
  EXPECT_EQ(inproc_parity.predicted_link_seconds, 0.0);
  EXPECT_EQ(inproc_parity.link_q_error, 1.0);
}

TEST_F(ShardedTest, FacadeBillsEgressAndCalibratesLinkTermsOverSocket) {
  DatabaseOptions opts;
  opts.exchange_transport = TransportKind::kSocket;
  Database db(opts);
  Rng rng(77);
  auto orders = std::make_shared<Table>(
      "orders", std::vector<ColumnDef>{{"id", LogicalType::kInt64},
                                       {"cust", LogicalType::kInt64},
                                       {"amount", LogicalType::kDouble}},
      512);
  DataChunk oc({LogicalType::kInt64, LogicalType::kInt64,
                LogicalType::kDouble});
  for (int64_t i = 0; i < 20000; ++i) {
    oc.AppendRow({Value(i), Value(rng.UniformInt(0, 799)),
                  Value(rng.Uniform(0.0, 1000.0))});
  }
  orders->Append(oc);
  db.meta()->RegisterTable(orders);
  db.meta()->AnalyzeAll();

  EXPECT_EQ(db.hardware()->exchange_transport, LinkTransport::kSocket);
  const double serialize_before = db.hardware()->wire_serialize_gibps;
  const double link_before = db.hardware()->link_gibps;

  const std::string sql =
      "SELECT cust, count(*) AS c, sum(amount) AS s FROM orders GROUP BY "
      "cust";
  double wire_total = 0.0;
  Dollars egress_total = 0.0;
  for (int i = 0; i < 3; ++i) {
    auto r = db.ExecuteSql(sql, UserConstraint().WithWorkers(4));
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_GT(r->exchange.wire_bytes(), 0.0);
    EXPECT_GT(r->egress_dollars, 0.0);
    wire_total += r->exchange.wire_bytes();
    egress_total += r->egress_dollars;
  }
  // Dollar conservation: the facade's egress ledger is exactly the sum of
  // the per-run charges, which are wire_bytes/GiB x the catalog rate.
  Database::EgressBilling billed = db.egress_billing();
  EXPECT_EQ(billed.runs, 3u);
  EXPECT_NEAR(billed.wire_bytes, wire_total, 1.0);
  EXPECT_NEAR(billed.dollars, egress_total, 1e-12);
  EXPECT_NEAR(billed.dollars, billed.wire_bytes / kGiB * 0.01, 1e-12);
  // The calibration loop saw real link measurements and moved the link
  // terms off their priors.
  EXPECT_TRUE(db.hardware()->wire_serialize_gibps != serialize_before ||
              db.hardware()->link_gibps != link_before);
  EXPECT_NE(db.calibration().link_total_scale(), 1.0);
}

TEST_F(ShardedTest, SimulatorParityOnSmallWorkload) {
  const std::string sql =
      "SELECT cust, count(*) AS c, sum(id) AS s FROM orders GROUP BY cust";
  auto prepared = part_->Prepare(sql, UserConstraint());
  ASSERT_TRUE(prepared.ok());

  auto time_run = [&](size_t workers, ExchangeStats* stats) {
    ShardedEngine engine(workers);
    auto t0 = std::chrono::steady_clock::now();
    auto r = engine.Execute(prepared->planned.plan.get());
    auto t1 = std::chrono::steady_clock::now();
    EXPECT_TRUE(r.ok());
    if (stats != nullptr) *stats = engine.last_exchange_stats();
    return std::chrono::duration<double>(t1 - t0).count();
  };
  ExchangeStats stats;
  double single = time_run(1, nullptr);
  double sharded = time_run(4, &stats);

  ShardedParity parity = CheckShardedParity(
      *prepared, *part_->estimator(), 4, single, sharded, stats);
  EXPECT_GT(parity.predicted_single, 0.0);
  EXPECT_GT(parity.predicted_sharded, 0.0);
  // The model was built for cloud-scale volumes; on a small local workload
  // the cross-check is structural: the partial-aggregate shuffle moves a
  // bounded number of group rows, and the model's believed exchange bytes
  // must be the same order of magnitude as what actually moved.
  EXPECT_GT(parity.measured_exchange_bytes, 0.0);
  EXPECT_GT(parity.predicted_exchange_bytes, 0.0);
  double ratio =
      parity.predicted_exchange_bytes / parity.measured_exchange_bytes;
  EXPECT_GT(ratio, 0.02) << parity.predicted_exchange_bytes << " vs "
                         << parity.measured_exchange_bytes;
  EXPECT_LT(ratio, 50.0) << parity.predicted_exchange_bytes << " vs "
                         << parity.measured_exchange_bytes;
}

}  // namespace
}  // namespace costdb
