#include <gtest/gtest.h>

#include "exec/engine.h"
#include "optimizer/optimizer.h"
#include "workload/ssb.h"
#include "workload/trace.h"

namespace costdb {
namespace {

TEST(SsbTest, TablesScaleWithFactor) {
  MetadataService small, big;
  SsbOptions s;
  s.scale = 0.01;
  LoadSsb(&small, s);
  s.scale = 0.02;
  LoadSsb(&big, s);
  auto rows = [](MetadataService& m, const char* t) {
    return m.GetTable(t).value()->num_rows();
  };
  EXPECT_NEAR(static_cast<double>(rows(big, "lineorder")) /
                  rows(small, "lineorder"),
              2.0, 0.05);
  EXPECT_EQ(rows(small, "dates"), 2556u);
  EXPECT_GT(rows(small, "customer"), 0u);
  // Stats exist for every table.
  for (const auto& name : small.TableNames()) {
    EXPECT_NE(small.GetStats(name), nullptr) << name;
  }
}

TEST(SsbTest, DeterministicAcrossRuns) {
  MetadataService a, b;
  SsbOptions opts;
  opts.scale = 0.005;
  LoadSsb(&a, opts);
  LoadSsb(&b, opts);
  auto ta = a.GetTable("lineorder").value();
  auto tb = b.GetTable("lineorder").value();
  ASSERT_EQ(ta->num_rows(), tb->num_rows());
  DataChunk ca = ta->Scan();
  DataChunk cb = tb->Scan();
  for (size_t i = 0; i < std::min<size_t>(100, ca.num_rows()); ++i) {
    EXPECT_EQ(ca.column(1).GetInt(i), cb.column(1).GetInt(i));
  }
}

TEST(SsbTest, SkewedForeignKeysConcentrate) {
  MetadataService meta;
  SsbOptions opts;
  opts.scale = 0.005;
  opts.fk_skew = 1.2;
  LoadSsb(&meta, opts);
  auto t = meta.GetTable("lineorder").value();
  DataChunk all = t->Scan();
  int64_t hits = 0;
  for (size_t i = 0; i < all.num_rows(); ++i) {
    if (all.column(1).GetInt(i) < 10) ++hits;  // custkey in top-10
  }
  // Zipf 1.2 concentrates far more than uniform (10/150 ~ 6.7%).
  EXPECT_GT(static_cast<double>(hits) / all.num_rows(), 0.2);
}

TEST(SsbTest, AllTwelveQueriesPlanAndExecute) {
  MetadataService meta;
  SsbOptions opts;
  opts.scale = 0.005;
  LoadSsb(&meta, opts);
  Optimizer opt(&meta);
  LocalEngine engine(4);
  for (const auto& q : SsbQueries()) {
    auto plan = opt.OptimizeSql(q.sql);
    ASSERT_TRUE(plan.ok()) << q.id << ": " << plan.status().ToString();
    auto result = engine.Execute(plan->get());
    ASSERT_TRUE(result.ok()) << q.id << ": " << result.status().ToString();
  }
}

TEST(SsbTest, Q1MatchesManualRecomputation) {
  MetadataService meta;
  SsbOptions opts;
  opts.scale = 0.005;
  LoadSsb(&meta, opts);
  // Manual scan of the base table.
  auto t = meta.GetTable("lineorder").value();
  DataChunk all = t->Scan();
  size_t disc_idx = t->ColumnIndex("lo_discount").value();
  size_t qty_idx = t->ColumnIndex("lo_quantity").value();
  size_t price_idx = t->ColumnIndex("lo_extendedprice").value();
  double expected = 0.0;
  for (size_t i = 0; i < all.num_rows(); ++i) {
    int64_t d = all.column(disc_idx).GetInt(i);
    if (d >= 1 && d <= 3 && all.column(qty_idx).GetInt(i) < 25) {
      expected += all.column(price_idx).GetDouble(i) * d;
    }
  }
  Optimizer opt(&meta);
  LocalEngine engine(4);
  auto plan = opt.OptimizeSql(FindQuery("Q1").sql);
  ASSERT_TRUE(plan.ok());
  auto result = engine.Execute(plan->get());
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->chunk.num_rows(), 1u);
  EXPECT_NEAR(result->chunk.column(0).GetDouble(0), expected,
              std::abs(expected) * 1e-9);
}

TEST(SsbTest, FindQueryLookup) {
  EXPECT_EQ(FindQuery("Q7").id, "Q7");
  EXPECT_TRUE(FindQuery("nope").sql.empty());
  EXPECT_EQ(SsbQueries().size(), 12u);
}

TEST(TraceTest, RateApproximatelyHonored) {
  TraceOptions opts;
  opts.duration = 2.0 * kSecondsPerDay;
  opts.queries_per_hour = 30.0;
  auto trace = GenerateTrace(opts);
  double expected = 30.0 * 48.0;
  EXPECT_NEAR(static_cast<double>(trace.size()), expected, expected * 0.2);
  // Sorted in time.
  for (size_t i = 1; i < trace.size(); ++i) {
    EXPECT_GE(trace[i].at, trace[i - 1].at);
  }
}

TEST(TraceTest, WeightsShiftMixture) {
  TraceOptions opts;
  opts.duration = 5.0 * kSecondsPerDay;
  opts.queries_per_hour = 50.0;
  opts.template_weights = {{"Q1", 9.0}, {"Q2", 1.0}};
  auto counts = CountByTemplate(GenerateTrace(opts));
  EXPECT_GT(counts["Q1"], counts["Q2"] * 5);
  EXPECT_EQ(counts.count("Q3"), 0u);
}

TEST(TraceTest, AdhocFraction) {
  TraceOptions opts;
  opts.duration = 1.0 * kSecondsPerDay;
  opts.queries_per_hour = 100.0;
  opts.adhoc_fraction = 0.3;
  auto trace = GenerateTrace(opts);
  int64_t adhoc = 0;
  for (const auto& ev : trace) {
    if (ev.query_id.rfind("adhoc_", 0) == 0) ++adhoc;
  }
  EXPECT_NEAR(static_cast<double>(adhoc) / trace.size(), 0.3, 0.07);
}

TEST(TraceTest, Deterministic) {
  TraceOptions opts;
  opts.duration = kSecondsPerDay;
  auto a = GenerateTrace(opts);
  auto b = GenerateTrace(opts);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].query_id, b[i].query_id);
    EXPECT_DOUBLE_EQ(a[i].at, b[i].at);
  }
}

TEST(TraceTest, DiurnalPatternDetectable) {
  TraceOptions opts;
  opts.duration = 4.0 * kSecondsPerDay;
  opts.queries_per_hour = 200.0;
  opts.diurnal_amplitude = 0.9;
  auto trace = GenerateTrace(opts);
  // Bucket per 6h; peak vs trough must differ substantially.
  std::vector<double> buckets(16, 0.0);
  for (const auto& ev : trace) {
    buckets[static_cast<size_t>(ev.at / (6 * 3600.0))] += 1.0;
  }
  double mx = *std::max_element(buckets.begin(), buckets.end());
  double mn = *std::min_element(buckets.begin(), buckets.end());
  EXPECT_GT(mx, mn * 1.5);
}

}  // namespace
}  // namespace costdb
