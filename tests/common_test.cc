#include <gtest/gtest.h>

#include <cmath>

#include "common/result.h"
#include "common/rng.h"
#include "common/stats_math.h"
#include "common/status.h"
#include "common/table_printer.h"
#include "common/units.h"

namespace costdb {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad dop");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad dop");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad dop");
}

TEST(StatusTest, AllCodesRoundTrip) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::SlaViolation("x").IsSlaViolation());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = []() -> Status { return Status::NotFound("missing table"); };
  auto wrapper = [&]() -> Status {
    COSTDB_RETURN_NOT_OK(fails());
    return Status::OK();
  };
  EXPECT_TRUE(wrapper().IsNotFound());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
  EXPECT_EQ(r.ValueOr(0), 7);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto produce = [](bool ok) -> Result<int> {
    if (ok) return 5;
    return Status::Internal("boom");
  };
  auto consume = [&](bool ok) -> Status {
    int v = 0;
    COSTDB_ASSIGN_OR_RETURN(v, produce(ok));
    EXPECT_EQ(v, 5);
    return Status::OK();
  };
  EXPECT_TRUE(consume(true).ok());
  EXPECT_TRUE(consume(false).IsInternal());
}

TEST(RngTest, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 5);
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-3, 9);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 9);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, NormalMeanApproximatelyCorrect) {
  Rng rng(11);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(rng.Normal(5.0, 2.0));
  EXPECT_NEAR(Mean(xs), 5.0, 0.1);
  EXPECT_NEAR(StdDev(xs), 2.0, 0.1);
}

TEST(RngTest, PoissonMeanApproximatelyCorrect) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.Poisson(3.5));
  EXPECT_NEAR(sum / n, 3.5, 0.15);
}

TEST(RngTest, ZipfSkewsTowardSmallValues) {
  Rng rng(17);
  int64_t ones = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) ones += (rng.Zipf(100, 1.0) == 1);
  // With theta=1, P(1) ~ 1/H_100 ~ 0.19.
  EXPECT_GT(ones, n / 10);
  EXPECT_LT(ones, n / 3);
}

TEST(RngTest, ZipfThetaZeroIsUniform) {
  Rng rng(19);
  int64_t low_half = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) low_half += (rng.Zipf(100, 0.0) <= 50);
  EXPECT_NEAR(static_cast<double>(low_half) / n, 0.5, 0.05);
}

TEST(StatsMathTest, MeanStdDev) {
  EXPECT_DOUBLE_EQ(Mean({1, 2, 3, 4}), 2.5);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_NEAR(StdDev({2, 4, 4, 4, 5, 5, 7, 9}), 2.0, 1e-9);
}

TEST(StatsMathTest, Percentile) {
  std::vector<double> v = {5, 1, 3, 2, 4};
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 3.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 5.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 25), 2.0);
}

TEST(StatsMathTest, QError) {
  EXPECT_DOUBLE_EQ(QError(10, 10), 1.0);
  EXPECT_DOUBLE_EQ(QError(20, 10), 2.0);
  EXPECT_DOUBLE_EQ(QError(5, 10), 2.0);
  EXPECT_GT(QError(0, 10), 1e9);  // clamped, not inf/nan
}

TEST(StatsMathTest, GeoMean) {
  EXPECT_NEAR(GeoMean({1, 4, 16}), 4.0, 1e-9);
  EXPECT_DOUBLE_EQ(GeoMean({}), 0.0);
}

TEST(StatsMathTest, LeastSquaresRecoverLine) {
  // y = 3 + 2x fitted from exact points.
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 10; ++i) {
    x.push_back(1.0);
    x.push_back(static_cast<double>(i));
    y.push_back(3.0 + 2.0 * i);
  }
  std::vector<double> beta;
  ASSERT_TRUE(LeastSquares(x, 2, y, &beta));
  EXPECT_NEAR(beta[0], 3.0, 1e-9);
  EXPECT_NEAR(beta[1], 2.0, 1e-9);
}

TEST(StatsMathTest, LeastSquaresSingularFails) {
  // Two identical columns -> singular normal equations.
  std::vector<double> x = {1, 1, 2, 2, 3, 3};
  std::vector<double> y = {1, 2, 3};
  std::vector<double> beta;
  EXPECT_FALSE(LeastSquares(x, 2, y, &beta));
}

TEST(StatsMathTest, RSquaredPerfectFit) {
  EXPECT_NEAR(RSquared({1, 2, 3}, {1, 2, 3}), 1.0, 1e-12);
  EXPECT_LT(RSquared({3, 2, 1}, {1, 2, 3}), 0.0);  // worse than mean
}

TEST(StatsMathTest, AutocorrelationDetectsPeriod) {
  std::vector<double> s;
  for (int i = 0; i < 64; ++i) s.push_back(i % 8 == 0 ? 10.0 : 1.0);
  EXPECT_GT(Autocorrelation(s, 8), 0.8);
  EXPECT_LT(Autocorrelation(s, 3), 0.3);
}

TEST(UnitsTest, Formatting) {
  EXPECT_EQ(FormatDollars(1.23456), "$1.2346");
  EXPECT_EQ(FormatDollars(123.456), "$123.46");
  EXPECT_EQ(FormatSeconds(0.5), "500.0 ms");
  EXPECT_EQ(FormatSeconds(90.0), "90.00 s");
  EXPECT_EQ(FormatBytes(2048), "2.0 KiB");
  EXPECT_EQ(FormatCount(1500000), "1.50M");
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"a", "long_header"});
  t.AddRow({"xxxxx", "1"});
  std::string s = t.ToString();
  EXPECT_NE(s.find("a    "), std::string::npos);
  EXPECT_NE(s.find("long_header"), std::string::npos);
  EXPECT_NE(s.find("xxxxx"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(TablePrinterTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d/%.1f", 3, 2.5), "3/2.5");
}

}  // namespace
}  // namespace costdb
