#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "admission_testing.h"
#include "service/session.h"
#include "sql/shape.h"
#include "workload/ssb.h"

namespace costdb {
namespace {

DatabaseOptions SmallDbOptions() {
  DatabaseOptions opts;
  opts.exec_threads = 4;
  opts.batch_threads = 4;
  return opts;
}

std::unique_ptr<Database> MakeSsbDatabase(
    DatabaseOptions opts = SmallDbOptions()) {
  auto db = std::make_unique<Database>(opts);
  SsbOptions data;
  data.scale = 0.01;
  data.row_group_size = 256;
  LoadSsb(db->meta(), data);
  return db;
}

int64_t SingleInt(const QueryResult& r) {
  EXPECT_EQ(r.chunk.num_rows(), 1u);
  return r.chunk.column(0).GetInt(0);
}

// -------------------------------------------------------- shape normalizer

TEST(StatementShapeTest, WhitespaceAndKeywordCaseFold) {
  const std::string a = NormalizeStatementShape(
      "select c_nation from customer where c_region = 'ASIA';");
  const std::string b = NormalizeStatementShape(
      "SELECT c_nation\n  FROM customer\tWHERE c_region = 'ASIA'");
  EXPECT_EQ(a, b);
  // Identifier case is load-bearing and must survive.
  EXPECT_NE(NormalizeStatementShape("SELECT c_nation FROM customer"),
            NormalizeStatementShape("SELECT C_NATION FROM customer"));
  // Literal values distinguish shapes (a literal is not a placeholder).
  EXPECT_NE(NormalizeStatementShape("SELECT 1 FROM t"),
            NormalizeStatementShape("SELECT 2 FROM t"));
  // Numerically identical floats agree.
  EXPECT_EQ(NormalizeStatementShape("SELECT 1.50 FROM t"),
            NormalizeStatementShape("SELECT 1.5 FROM t"));
}

TEST(SessionTest, ShapeNormalizedSqlHitsThePlanCache) {
  DatabaseOptions opts = SmallDbOptions();
  opts.enable_calibration = false;
  auto db = MakeSsbDatabase(opts);
  Session session(db.get());
  auto first = session.ExecuteSql(
      "select count(*) as n from lineorder where lo_quantity < 25");
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_FALSE(first->plan_cache_hit);
  auto second = session.ExecuteSql(
      "SELECT count(*) AS n\n   FROM lineorder  WHERE lo_quantity < 25;");
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->plan_cache_hit)
      << "whitespace/keyword-case variant missed the cache";
  EXPECT_EQ(SingleInt(first->result), SingleInt(second->result));
}

// ------------------------------------------------------ prepared statements

TEST(SessionTest, PreparedStatementBindsParameters) {
  DatabaseOptions opts = SmallDbOptions();
  opts.enable_calibration = false;
  auto db = MakeSsbDatabase(opts);
  Session session(db.get());

  auto stmt = session.Prepare(
      "SELECT count(*) AS n FROM lineorder WHERE lo_quantity < ?");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  ASSERT_EQ((*stmt)->param_count(), 1u);
  EXPECT_EQ((*stmt)->param_types()[0], LogicalType::kInt64);

  for (int64_t threshold : {10, 25, 40}) {
    auto via_param = session.Execute(*stmt, {Value(threshold)});
    ASSERT_TRUE(via_param.ok()) << via_param.status().ToString();
    auto via_literal = session.ExecuteSql(
        "SELECT count(*) AS n FROM lineorder WHERE lo_quantity < " +
        std::to_string(threshold));
    ASSERT_TRUE(via_literal.ok());
    EXPECT_EQ(SingleInt(via_param->result), SingleInt(via_literal->result))
        << "threshold " << threshold;
  }
}

TEST(SessionTest, PreparedStatementInfersTypesAcrossClauses) {
  auto db = MakeSsbDatabase();
  Session session(db.get());
  // String placeholder (dimension filter), int placeholders (BETWEEN),
  // double placeholder (fact measure) in one statement.
  auto stmt = session.Prepare(
      "SELECT count(*) AS n FROM lineorder, supplier "
      "WHERE lo_suppkey = s_suppkey AND s_region = ? "
      "AND lo_discount BETWEEN ? AND ? AND lo_extendedprice > ?");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  const auto& types = (*stmt)->param_types();
  ASSERT_EQ(types.size(), 4u);
  EXPECT_EQ(types[0], LogicalType::kVarchar);
  EXPECT_EQ(types[1], LogicalType::kInt64);
  EXPECT_EQ(types[2], LogicalType::kInt64);
  EXPECT_EQ(types[3], LogicalType::kDouble);

  auto run = session.Execute(
      *stmt, {Value(std::string("ASIA")), Value(int64_t{1}), Value(int64_t{5}),
              Value(100.0)});
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_GE(SingleInt(run->result), 0);
}

TEST(SessionTest, PreparedStatementNullParameterMatchesNothing) {
  DatabaseOptions opts = SmallDbOptions();
  opts.enable_calibration = false;
  auto db = MakeSsbDatabase(opts);
  Session session(db.get());
  auto stmt = session.Prepare(
      "SELECT count(*) AS n FROM lineorder WHERE lo_quantity < ?");
  ASSERT_TRUE(stmt.ok());
  // SQL three-valued logic: a comparison with NULL selects no rows.
  auto run = session.Execute(*stmt, {Value::Null()});
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(SingleInt(run->result), 0);
}

TEST(SessionTest, PreparedStatementArityAndTypeErrors) {
  auto db = MakeSsbDatabase();
  Session session(db.get());
  auto stmt = session.Prepare(
      "SELECT count(*) AS n FROM lineorder WHERE lo_quantity < ?");
  ASSERT_TRUE(stmt.ok());

  auto no_args = session.Execute(*stmt, {});
  EXPECT_TRUE(no_args.status().IsInvalidArgument());
  auto too_many = session.Execute(*stmt, {Value(int64_t{1}), Value(int64_t{2})});
  EXPECT_TRUE(too_many.status().IsInvalidArgument());
  auto wrong_type = session.Execute(*stmt, {Value(std::string("wat"))});
  EXPECT_TRUE(wrong_type.status().IsInvalidArgument());
  // A double does not silently truncate into an int slot.
  auto truncating = session.Execute(*stmt, {Value(2.5)});
  EXPECT_TRUE(truncating.status().IsInvalidArgument());

  // Unanchorable placeholder fails at Prepare, not at Execute.
  auto unanchored = session.Prepare(
      "SELECT count(*) AS n FROM lineorder WHERE ? = ?");
  EXPECT_TRUE(unanchored.status().IsInvalidArgument());
}

TEST(SessionTest, HundredParameterVectorsPlanExactlyOnce) {
  DatabaseOptions opts = SmallDbOptions();
  opts.enable_calibration = false;  // keep the calibration version fixed
  auto db = MakeSsbDatabase(opts);
  Session session(db.get());

  auto stmt = session.Prepare(
      "SELECT count(*) AS n FROM lineorder WHERE lo_quantity < ?");
  ASSERT_TRUE(stmt.ok());
  int64_t last = -1;
  for (int i = 0; i < 100; ++i) {
    auto run = session.Execute(*stmt, {Value(int64_t{i})});
    ASSERT_TRUE(run.ok()) << i << ": " << run.status().ToString();
    int64_t n = SingleInt(run->result);
    EXPECT_GE(n, last) << "count must grow with the threshold";
    last = n;
  }
  // The acceptance bar: one optimizer run, ≥99 cache hits.
  EXPECT_EQ((*stmt)->times_planned(), 1u);
  EXPECT_EQ((*stmt)->executions(), 100u);
  auto cache = db->plan_cache_stats();
  EXPECT_GE(cache.hits, 99u) << "hits=" << cache.hits
                             << " misses=" << cache.misses;
  EXPECT_EQ(cache.misses, 1u);
  EXPECT_GE(session.stats().replans_avoided, 99u);
}

TEST(SessionTest, CalibrationMoveInvalidatesPreparedPlan) {
  auto db = MakeSsbDatabase();  // calibration ON
  Session session(db.get());
  auto stmt = session.Prepare(
      "SELECT count(*) AS n FROM lineorder WHERE lo_quantity < ?");
  ASSERT_TRUE(stmt.ok());
  const int version_before = db->calibration_version();
  auto first = session.Execute(*stmt, {Value(int64_t{25})});
  ASSERT_TRUE(first.ok());
  // The first real run on this machine moves the calibration far from the
  // modeled cloud node, bumping the version...
  ASSERT_GT(db->calibration_version(), version_before)
      << "expected the warm-up run to move the calibration";
  // ...so the next Execute must replan instead of serving the stale plan.
  auto second = session.Execute(*stmt, {Value(int64_t{25})});
  ASSERT_TRUE(second.ok());
  EXPECT_GE((*stmt)->times_planned(), 2u);
  EXPECT_GE(db->plan_cache_stats().invalidations, 1u);
}

TEST(SessionTest, PreparedStatementsShareTheCacheAcrossSessions) {
  DatabaseOptions opts = SmallDbOptions();
  opts.enable_calibration = false;
  auto db = MakeSsbDatabase(opts);
  Session a(db.get());
  Session b(db.get());
  const std::string sql =
      "SELECT count(*) AS n FROM lineorder WHERE lo_quantity < ?";
  auto stmt_a = a.Prepare(sql);
  ASSERT_TRUE(stmt_a.ok());
  auto stmt_b = b.Prepare(sql);  // same shape: planned once, shared
  ASSERT_TRUE(stmt_b.ok());
  EXPECT_EQ((*stmt_a)->times_planned(), 1u);
  EXPECT_EQ((*stmt_b)->times_planned(), 0u);
  EXPECT_EQ((*stmt_b)->reuses(), 1u);
  EXPECT_EQ(db->plan_cache_stats().misses, 1u);
}

// ------------------------------------------------------------ budget ledger

TEST(SessionTest, ConcurrentSessionsSpendDisjointBudgets) {
  DatabaseOptions opts = SmallDbOptions();
  opts.enable_calibration = false;
  auto db = MakeSsbDatabase(opts);
  // Make estimated bills visible: pretend the fact table is warehouse-size.
  db->meta()->SetVirtualScale("lineorder", 1e5);

  SessionOptions rich;
  rich.budget = 1e9;
  SessionOptions poor;
  poor.budget = 1e-9;
  Session alice(db.get(), rich);
  Session bob(db.get(), poor);

  const std::string sql = FindQuery("Q7").sql;
  auto ok = alice.ExecuteSql(sql);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_GT(alice.spent(), 0.0);

  auto refused = bob.ExecuteSql(sql);
  ASSERT_FALSE(refused.ok());
  EXPECT_TRUE(refused.status().IsResourceExhausted())
      << refused.status().ToString();
  EXPECT_EQ(bob.spent(), 0.0) << "a refused query must not charge the ledger";

  // Alice's ledger is hers alone: Bob's refusal did not touch it, and her
  // remaining budget reflects only her own spending.
  EXPECT_NEAR(alice.budget_remaining(), 1e9 - alice.spent(), 1e-6);

  // Concurrent spending stays disjoint.
  std::atomic<int> alice_ok{0};
  std::atomic<int> bob_refused{0};
  std::thread ta([&] {
    for (int i = 0; i < 3; ++i) {
      if (alice.ExecuteSql(FindQuery("Q3").sql).ok()) ++alice_ok;
    }
  });
  std::thread tb([&] {
    for (int i = 0; i < 3; ++i) {
      if (bob.ExecuteSql(FindQuery("Q3").sql).status().IsResourceExhausted()) {
        ++bob_refused;
      }
    }
  });
  ta.join();
  tb.join();
  EXPECT_EQ(alice_ok.load(), 3);
  EXPECT_EQ(bob_refused.load(), 3);
  EXPECT_EQ(bob.spent(), 0.0);
}

// -------------------------------------------------------- streaming results

TEST(SessionTest, FetchChunkParityWithMaterializedExecuteSql) {
  DatabaseOptions opts = SmallDbOptions();
  opts.enable_calibration = false;
  auto db = MakeSsbDatabase(opts);
  Session session(db.get());

  // A multi-morsel scan, an aggregation, and a sorted LIMIT query cover
  // the three result-pipeline shapes (scan source, breaker source, limit
  // truncation).
  const std::vector<std::string> queries = {
      "SELECT lo_quantity, lo_discount FROM lineorder WHERE lo_quantity < 30",
      FindQuery("Q3").sql,
      "SELECT lo_shipmode, sum(lo_revenue) AS rev FROM lineorder "
      "GROUP BY lo_shipmode ORDER BY rev DESC LIMIT 3",
  };
  for (const auto& sql : queries) {
    auto materialized = session.ExecuteSql(sql);
    ASSERT_TRUE(materialized.ok()) << materialized.status().ToString();

    auto handle = session.Submit(sql);
    ASSERT_TRUE(handle.ok()) << handle.status().ToString();
    DataChunk streamed(materialized->result.types);
    DataChunk chunk;
    size_t chunks_fetched = 0;
    while (true) {
      auto got = (*handle)->FetchChunk(&chunk);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      if (!*got) break;
      ++chunks_fetched;
      streamed.Append(chunk);
    }
    EXPECT_GT(chunks_fetched, 0u) << sql;
    EXPECT_EQ(streamed.num_rows(), materialized->result.chunk.num_rows())
        << sql;
    EXPECT_EQ(streamed.ToString(1 << 20),
              materialized->result.chunk.ToString(1 << 20))
        << sql;
    // The handle still reports plan/timings after a fully-drained stream.
    auto taken = (*handle)->Take();
    ASSERT_TRUE(taken.ok());
    EXPECT_EQ(taken->result.chunk.num_rows(), 0u) << "already fetched";
    EXPECT_FALSE(taken->timings.empty());
  }
}

TEST(SessionTest, TakeMaterializesUnfetchedStream) {
  DatabaseOptions opts = SmallDbOptions();
  opts.enable_calibration = false;
  auto db = MakeSsbDatabase(opts);
  Session session(db.get());
  const std::string sql = FindQuery("Q3").sql;
  auto materialized = session.ExecuteSql(sql);
  ASSERT_TRUE(materialized.ok());
  auto handle = session.Submit(sql);
  ASSERT_TRUE(handle.ok());
  auto taken = (*handle)->Take();
  ASSERT_TRUE(taken.ok()) << taken.status().ToString();
  EXPECT_EQ(taken->result.chunk.ToString(1 << 20),
            materialized->result.chunk.ToString(1 << 20));
  EXPECT_EQ(taken->result.names, materialized->result.names);
}

// ----------------------------------------------------- admission + cancel

DatabaseOptions SingleSlotOptions() {
  DatabaseOptions opts = SmallDbOptions();
  opts.enable_calibration = false;
  opts.admission.max_concurrent = 1;
  return opts;
}

// Slot saturation and queue observation come from the shared harness
// (tests/admission_testing.h): SlotBlocker holds the single admission
// slot, WaitForQueued makes submissions visible before assertions.

TEST(SessionTest, CancelBeforeAdmissionAndAfterStart) {
  auto db = MakeSsbDatabase(SingleSlotOptions());
  Session session(db.get());

  auto blocker = std::make_unique<SlotBlocker>(db.get());
  auto queued = session.Submit(FindQuery("Q3").sql);
  ASSERT_TRUE(queued.ok());
  EXPECT_EQ((*queued)->Poll(), QueryHandle::State::kQueued);
  EXPECT_TRUE((*queued)->Cancel()) << "queued query must be cancellable";
  EXPECT_EQ((*queued)->Poll(), QueryHandle::State::kCancelled);
  EXPECT_TRUE((*queued)->Wait().IsCancelled());
  DataChunk chunk;
  EXPECT_TRUE((*queued)->FetchChunk(&chunk).status().IsCancelled());
  // Cancelling twice is idempotent(ly false): the query never ran.
  EXPECT_FALSE((*queued)->Cancel());

  // A still-queued real query, released to run: cancel after admission
  // must fail and the query completes normally.
  auto running = session.Submit(FindQuery("Q3").sql);
  ASSERT_TRUE(running.ok());
  EXPECT_EQ((*running)->Poll(), QueryHandle::State::kQueued);
  blocker->Release();
  auto result = (*running)->Take();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE((*running)->Cancel()) << "a finished query is past withdrawal";
  EXPECT_EQ((*running)->Poll(), QueryHandle::State::kDone);
}

TEST(SessionTest, DatabaseShutdownCancelsQueuedHandles) {
  auto db = MakeSsbDatabase(SingleSlotOptions());
  Session session(db.get());
  SlotBlocker blocker(db.get());
  auto handle = session.Submit(FindQuery("Q3").sql);
  ASSERT_TRUE(handle.ok());
  EXPECT_EQ((*handle)->Poll(), QueryHandle::State::kQueued);
  EXPECT_GT(session.spent(), 0.0);  // the submission reserved its estimate

  // Tear the database down while the queued handle is being waited on:
  // the admission controller must complete the handle as cancelled (and
  // refund the reservation) before it blocks draining the running slot.
  std::thread destroyer([&] { db.reset(); });
  EXPECT_TRUE((*handle)->Wait().IsCancelled());
  EXPECT_EQ((*handle)->Poll(), QueryHandle::State::kCancelled);
  EXPECT_EQ(session.spent(), 0.0);
  blocker.Release();
  destroyer.join();
}

TEST(SessionTest, AdmissionPrefersCheapShortQueriesUnderSaturation) {
  auto db = MakeSsbDatabase(SingleSlotOptions());
  // Fact queries look expensive to the estimator; dimension scans stay
  // cheap. (Virtual scaling inflates estimates, not actual rows.)
  db->meta()->SetVirtualScale("lineorder", 1e5);
  Session session(db.get());

  SlotBlocker blocker(db.get());
  // Expensive submitted BEFORE cheap; both queue behind the blocker.
  auto expensive = session.Submit(FindQuery("Q5").sql);
  ASSERT_TRUE(expensive.ok());
  auto cheap = session.Submit("SELECT count(*) AS n FROM supplier");
  ASSERT_TRUE(cheap.ok());
  ASSERT_LT(cheap.value()->plan().estimate.latency,
            expensive.value()->plan().estimate.latency)
      << "test premise: the dimension scan must estimate cheaper";
  EXPECT_EQ((*expensive)->Poll(), QueryHandle::State::kQueued);
  EXPECT_EQ((*cheap)->Poll(), QueryHandle::State::kQueued);

  blocker.Release();
  ASSERT_TRUE((*cheap)->Wait().ok());
  ASSERT_TRUE((*expensive)->Wait().ok());
  // The cheap query, though submitted later, was admitted first.
  EXPECT_GE(db->admission()->stats().reordered, 1u)
      << "cost-aware admission never reordered the queue";
}

// ----------------------------------------------------------- batch parity

TEST(SessionTest, SubmitBatchMatchesSessionExecution) {
  std::vector<QueryRequest> batch;
  for (const char* id : {"Q1", "Q3", "Q5"}) {
    batch.push_back({FindQuery(id).sql, UserConstraint::Sla(60.0)});
  }
  DatabaseOptions opts = SmallDbOptions();
  opts.enable_calibration = false;
  auto batch_db = MakeSsbDatabase(opts);
  auto results = batch_db->SubmitBatch(batch);
  ASSERT_EQ(results.size(), batch.size());

  auto serial_db = MakeSsbDatabase(opts);
  Session session(serial_db.get());
  for (size_t i = 0; i < batch.size(); ++i) {
    ASSERT_TRUE(results[i].ok()) << results[i].status().ToString();
    auto serial = session.ExecuteSql(batch[i].sql, batch[i].constraint);
    ASSERT_TRUE(serial.ok());
    EXPECT_EQ(results[i]->result.ToString(1 << 20),
              serial->result.ToString(1 << 20))
        << "query " << i;
  }
}

}  // namespace
}  // namespace costdb
