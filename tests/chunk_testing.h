#pragma once

// Shared result-comparison oracle for the engine-parity suites
// (sharded_test, elastic_test): rows are compared via the engine's own
// encoded row key (EncodeChunkKeyInto), so "identical" means identical
// under the same encoding that orders grouped-aggregate output.

#include <algorithm>
#include <string>
#include <vector>

#include "exec/engine.h"

namespace costdb {

/// True when `a` and `b` have the same shape and byte-identical rows in
/// the same order; fills `why` with the first divergence otherwise.
inline bool ChunksBitIdentical(const DataChunk& a, const DataChunk& b,
                               std::string* why) {
  if (a.num_columns() != b.num_columns() || a.num_rows() != b.num_rows()) {
    *why = "shape mismatch: " + std::to_string(a.num_rows()) + "x" +
           std::to_string(a.num_columns()) + " vs " +
           std::to_string(b.num_rows()) + "x" +
           std::to_string(b.num_columns());
    return false;
  }
  std::string ka, kb;
  for (size_t r = 0; r < a.num_rows(); ++r) {
    EncodeChunkKeyInto(a, a.num_columns(), r, &ka);
    EncodeChunkKeyInto(b, b.num_columns(), r, &kb);
    if (ka != kb) {
      *why = "row " + std::to_string(r) + ": " + ka + " vs " + kb;
      return false;
    }
  }
  return true;
}

/// Order-insensitive variant: same rows as a multiset (the documented
/// contract for bare repartition-join output).
inline bool ChunksSameMultiset(const DataChunk& a, const DataChunk& b,
                               std::string* why) {
  if (a.num_columns() != b.num_columns() || a.num_rows() != b.num_rows()) {
    *why = "shape mismatch";
    return false;
  }
  auto keys = [](const DataChunk& c) {
    std::vector<std::string> out(c.num_rows());
    for (size_t r = 0; r < c.num_rows(); ++r) {
      EncodeChunkKeyInto(c, c.num_columns(), r, &out[r]);
    }
    std::sort(out.begin(), out.end());
    return out;
  };
  if (keys(a) != keys(b)) {
    *why = "row multisets differ";
    return false;
  }
  return true;
}

}  // namespace costdb
