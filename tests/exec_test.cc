#include <gtest/gtest.h>

#include "exec/engine.h"
#include "exec/evaluator.h"
#include "optimizer/optimizer.h"

namespace costdb {
namespace {

/// Fixture: two small tables with hand-checkable contents.
///
/// orders: id 0..9, cid = id % 3, amount = 10*id, odate = 1995-01-01 + id
/// customer: id 0..2, name in {alice, bob, carol}, tier = id
class ExecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto orders = std::make_shared<Table>(
        "orders", std::vector<ColumnDef>{{"id", LogicalType::kInt64},
                                         {"cid", LogicalType::kInt64},
                                         {"amount", LogicalType::kDouble},
                                         {"odate", LogicalType::kDate}},
        4);  // tiny row groups to exercise morsels + zone maps
    int64_t base_date = 0;
    EXPECT_TRUE(ParseDate("1995-01-01", &base_date));
    DataChunk oc({LogicalType::kInt64, LogicalType::kInt64,
                  LogicalType::kDouble, LogicalType::kDate});
    for (int64_t i = 0; i < 10; ++i) {
      oc.AppendRow({Value(i), Value(i % 3), Value(10.0 * i),
                    Value(base_date + i)});
    }
    orders->Append(oc);

    auto customer = std::make_shared<Table>(
        "customer", std::vector<ColumnDef>{{"id", LogicalType::kInt64},
                                           {"name", LogicalType::kVarchar},
                                           {"tier", LogicalType::kInt64}});
    DataChunk cc({LogicalType::kInt64, LogicalType::kVarchar,
                  LogicalType::kInt64});
    cc.AppendRow({Value(int64_t{0}), Value(std::string("alice")), Value(int64_t{0})});
    cc.AppendRow({Value(int64_t{1}), Value(std::string("bob")), Value(int64_t{1})});
    cc.AppendRow({Value(int64_t{2}), Value(std::string("carol")), Value(int64_t{2})});
    customer->Append(cc);

    meta_.RegisterTable(orders);
    meta_.RegisterTable(customer);
    meta_.AnalyzeAll();
  }

  QueryResult Run(const std::string& sql, size_t threads = 4) {
    Optimizer opt(&meta_);
    auto plan = opt.OptimizeSql(sql);
    EXPECT_TRUE(plan.ok()) << sql << " -> " << plan.status().ToString();
    LocalEngine engine(threads);
    auto result = engine.Execute(plan->get());
    EXPECT_TRUE(result.ok()) << sql << " -> " << result.status().ToString();
    return result.ok() ? std::move(*result) : QueryResult{};
  }

  MetadataService meta_;
};

TEST_F(ExecTest, ScanAll) {
  auto r = Run("SELECT id FROM orders");
  EXPECT_EQ(r.chunk.num_rows(), 10u);
}

TEST_F(ExecTest, FilterInt) {
  auto r = Run("SELECT id FROM orders WHERE id >= 7");
  ASSERT_EQ(r.chunk.num_rows(), 3u);
}

TEST_F(ExecTest, FilterDoubleAndArithmetic) {
  auto r = Run("SELECT amount * 2 AS dbl FROM orders WHERE amount > 75.0");
  // amounts 80, 90 -> doubled 160, 180
  ASSERT_EQ(r.chunk.num_rows(), 2u);
  EXPECT_DOUBLE_EQ(r.chunk.column(0).GetDouble(0) +
                       r.chunk.column(0).GetDouble(1),
                   340.0);
}

TEST_F(ExecTest, FilterDate) {
  auto r = Run(
      "SELECT id FROM orders WHERE odate BETWEEN DATE '1995-01-03' AND "
      "DATE '1995-01-05'");
  EXPECT_EQ(r.chunk.num_rows(), 3u);  // ids 2,3,4
}

TEST_F(ExecTest, FilterString) {
  auto r = Run("SELECT id FROM customer WHERE name = 'bob'");
  ASSERT_EQ(r.chunk.num_rows(), 1u);
  EXPECT_EQ(r.chunk.column(0).GetInt(0), 1);
}

TEST_F(ExecTest, LikePattern) {
  auto r = Run("SELECT name FROM customer WHERE name LIKE '%o%'");
  EXPECT_EQ(r.chunk.num_rows(), 2u);  // bob, carol
}

TEST_F(ExecTest, InList) {
  auto r = Run("SELECT id FROM orders WHERE id IN (1, 5, 9, 100)");
  EXPECT_EQ(r.chunk.num_rows(), 3u);
}

TEST_F(ExecTest, GlobalAggregates) {
  auto r = Run(
      "SELECT count(*), sum(amount), min(id), max(id), avg(amount) "
      "FROM orders");
  ASSERT_EQ(r.chunk.num_rows(), 1u);
  EXPECT_EQ(r.chunk.column(0).GetInt(0), 10);
  EXPECT_DOUBLE_EQ(r.chunk.column(1).GetDouble(0), 450.0);
  EXPECT_EQ(r.chunk.column(2).GetInt(0), 0);
  EXPECT_EQ(r.chunk.column(3).GetInt(0), 9);
  EXPECT_DOUBLE_EQ(r.chunk.column(4).GetDouble(0), 45.0);
}

TEST_F(ExecTest, GlobalAggregateOnEmptyInput) {
  auto r = Run("SELECT count(*) FROM orders WHERE id > 1000");
  ASSERT_EQ(r.chunk.num_rows(), 1u);
  EXPECT_EQ(r.chunk.column(0).GetInt(0), 0);
}

TEST_F(ExecTest, GroupByWithHavingAndOrder) {
  // cid 0: ids 0,3,6,9 -> sum 180 ; cid 1: 1,4,7 -> 120 ; cid 2: 2,5,8 -> 150
  auto r = Run(
      "SELECT cid, sum(amount) AS total FROM orders GROUP BY cid "
      "HAVING sum(amount) > 130 ORDER BY total DESC");
  ASSERT_EQ(r.chunk.num_rows(), 2u);
  EXPECT_EQ(r.chunk.column(0).GetInt(0), 0);
  EXPECT_DOUBLE_EQ(r.chunk.column(1).GetDouble(0), 180.0);
  EXPECT_EQ(r.chunk.column(0).GetInt(1), 2);
}

TEST_F(ExecTest, JoinTwoWay) {
  auto r = Run(
      "SELECT o.id, c.name FROM orders o JOIN customer c ON o.cid = c.id "
      "WHERE c.name = 'bob' ORDER BY o.id");
  // cid=1 -> ids 1,4,7
  ASSERT_EQ(r.chunk.num_rows(), 3u);
  EXPECT_EQ(r.chunk.column(0).GetInt(0), 1);
  EXPECT_EQ(r.chunk.column(0).GetInt(2), 7);
  EXPECT_EQ(r.chunk.column(1).GetString(1), "bob");
}

TEST_F(ExecTest, JoinWithAggregation) {
  auto r = Run(
      "SELECT c.name, sum(o.amount) AS total FROM orders o, customer c "
      "WHERE o.cid = c.id GROUP BY c.name ORDER BY total");
  ASSERT_EQ(r.chunk.num_rows(), 3u);
  EXPECT_EQ(r.chunk.column(0).GetString(0), "bob");      // 120
  EXPECT_EQ(r.chunk.column(0).GetString(1), "carol");    // 150
  EXPECT_EQ(r.chunk.column(0).GetString(2), "alice");    // 180
  EXPECT_DOUBLE_EQ(r.chunk.column(1).GetDouble(2), 180.0);
}

TEST_F(ExecTest, OrderByLimit) {
  auto r = Run("SELECT id FROM orders ORDER BY id DESC LIMIT 4");
  ASSERT_EQ(r.chunk.num_rows(), 4u);
  EXPECT_EQ(r.chunk.column(0).GetInt(0), 9);
  EXPECT_EQ(r.chunk.column(0).GetInt(3), 6);
}

TEST_F(ExecTest, OrderByUnselectedColumn) {
  auto r = Run("SELECT amount FROM orders ORDER BY id DESC LIMIT 2");
  ASSERT_EQ(r.chunk.num_rows(), 2u);
  EXPECT_DOUBLE_EQ(r.chunk.column(0).GetDouble(0), 90.0);
}

TEST_F(ExecTest, EmptyJoinResult) {
  auto r = Run(
      "SELECT o.id FROM orders o JOIN customer c ON o.cid = c.id "
      "WHERE c.name = 'nobody'");
  EXPECT_EQ(r.chunk.num_rows(), 0u);
}

TEST_F(ExecTest, DeterministicAcrossThreadCounts) {
  const std::string sql =
      "SELECT cid, count(*) AS n FROM orders GROUP BY cid ORDER BY cid";
  auto r1 = Run(sql, 1);
  auto r8 = Run(sql, 8);
  ASSERT_EQ(r1.chunk.num_rows(), r8.chunk.num_rows());
  for (size_t i = 0; i < r1.chunk.num_rows(); ++i) {
    EXPECT_EQ(r1.chunk.column(0).GetInt(i), r8.chunk.column(0).GetInt(i));
    EXPECT_EQ(r1.chunk.column(1).GetInt(i), r8.chunk.column(1).GetInt(i));
  }
}

TEST_F(ExecTest, ZoneMapPruningPreservesCorrectness) {
  // orders is appended in id order with row groups of 4, so id predicates
  // prune groups; the result must match the unpruned logical answer.
  auto r = Run("SELECT count(*) FROM orders WHERE id < 4");
  ASSERT_EQ(r.chunk.num_rows(), 1u);
  EXPECT_EQ(r.chunk.column(0).GetInt(0), 4);
}

TEST_F(ExecTest, ThreeWayJoinChain) {
  // Self-style chain through customer: orders->customer->customer tier.
  auto r = Run(
      "SELECT count(*) FROM orders o, customer c, customer d "
      "WHERE o.cid = c.id AND c.tier = d.tier");
  ASSERT_EQ(r.chunk.num_rows(), 1u);
  EXPECT_EQ(r.chunk.column(0).GetInt(0), 10);  // tiers unique -> 1:1
}

TEST(LikeMatchTest, Patterns) {
  EXPECT_TRUE(LikeMatch("hello", "h%"));
  EXPECT_TRUE(LikeMatch("hello", "%llo"));
  EXPECT_TRUE(LikeMatch("hello", "%ell%"));
  EXPECT_TRUE(LikeMatch("hello", "h_llo"));
  EXPECT_FALSE(LikeMatch("hello", "h_abc"));
  EXPECT_FALSE(LikeMatch("hello", "hello!"));
  EXPECT_TRUE(LikeMatch("", "%"));
  EXPECT_FALSE(LikeMatch("", "_"));
  EXPECT_TRUE(LikeMatch("abc", "abc"));
}

TEST(EvaluatorTest, ArithmeticAndLogic) {
  DataChunk chunk({LogicalType::kInt64, LogicalType::kDouble});
  chunk.AppendRow({Value(int64_t{4}), Value(2.0)});
  chunk.AppendRow({Value(int64_t{6}), Value(3.0)});
  std::vector<std::string> names = {"a", "b"};
  Evaluator ev(&names);

  auto sum = Expr::MakeArith('+', Expr::MakeColumn("a", LogicalType::kInt64),
                             Expr::MakeColumn("b", LogicalType::kDouble));
  auto v = ev.Evaluate(*sum, chunk);
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(v->GetDouble(0), 6.0);
  EXPECT_DOUBLE_EQ(v->GetDouble(1), 9.0);

  auto div = Expr::MakeArith('/', Expr::MakeColumn("a", LogicalType::kInt64),
                             Expr::MakeColumn("b", LogicalType::kDouble));
  v = ev.Evaluate(*div, chunk);
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(v->GetDouble(1), 2.0);

  auto cmp = Expr::MakeCompare(CompareOp::kGt,
                               Expr::MakeColumn("a", LogicalType::kInt64),
                               Expr::MakeConstant(Value(int64_t{5}),
                                                  LogicalType::kInt64));
  auto sel = ev.EvaluateSelection(*cmp, chunk);
  ASSERT_TRUE(sel.ok());
  ASSERT_EQ(sel->size(), 1u);
  EXPECT_EQ((*sel)[0], 1u);
}

}  // namespace
}  // namespace costdb
