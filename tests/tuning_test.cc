#include <gtest/gtest.h>

#include <cmath>

#include "tuning/advisors.h"
#include "tuning/what_if.h"
#include "workload/ssb.h"

namespace costdb {
namespace {

class TuningTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SsbOptions opts;
    opts.scale = 0.005;
    opts.row_group_size = 128;  // fine-grained zone maps on tiny data
    LoadSsb(&meta_, opts);
    meta_.SetVirtualScale("lineorder", 100000.0);
    node_ = PricingCatalog::Default().default_node();
    estimator_ = std::make_unique<CostEstimator>(&hw_, &node_);
  }

  TuningAction MvAction() {
    TuningAction action;
    action.kind = TuningAction::Kind::kMaterializedView;
    action.mv_name = "mv_lineorder_dates";
    action.mv_tables = {"dates", "lineorder"};
    action.mv_join_edges = {"dates.d_datekey=lineorder.lo_datekey"};
    action.mv_cluster_column = "d_year";  // Q3's hot filter attribute
    return action;
  }

  MetadataService meta_;
  HardwareCalibration hw_;
  InstanceType node_;
  std::unique_ptr<CostEstimator> estimator_;
};

TEST_F(TuningTest, BuildMaterializedViewJoinsCorrectly) {
  LocalEngine engine(4);
  auto mv = BuildMaterializedView(meta_, MvAction(), &engine);
  ASSERT_TRUE(mv.ok()) << mv.status().ToString();
  // FK join: every lineorder row matches exactly one date.
  EXPECT_EQ((*mv)->num_rows(), meta_.GetTable("lineorder").value()->num_rows());
  // Columns carry unqualified names from both tables.
  EXPECT_TRUE((*mv)->ColumnIndex("lo_revenue").ok());
  EXPECT_TRUE((*mv)->ColumnIndex("d_year").ok());
}

TEST_F(TuningTest, SubstituteMvRewritesPlanAndPreservesResults) {
  LocalEngine engine(4);
  TuningAction action = MvAction();
  auto mv = BuildMaterializedView(meta_, action, &engine);
  ASSERT_TRUE(mv.ok());

  Binder binder(&meta_);
  auto q = binder.BindSql(FindQuery("Q3").sql);
  ASSERT_TRUE(q.ok());
  DagPlanner dag(&meta_);
  auto logical = dag.Plan(*q);
  ASSERT_TRUE(logical.ok());
  LogicalPlanPtr rewritten = SubstituteMvInPlan(*logical, action, *mv);
  ASSERT_NE(rewritten, nullptr);

  PhysicalPlanner physical(&meta_, &q->relations);
  auto plan_orig = physical.Plan(*logical);
  auto plan_mv = physical.Plan(rewritten);
  ASSERT_TRUE(plan_orig.ok());
  ASSERT_TRUE(plan_mv.ok()) << plan_mv.status().ToString();
  auto r_orig = engine.Execute(plan_orig->get());
  auto r_mv = engine.Execute(plan_mv->get());
  ASSERT_TRUE(r_orig.ok());
  ASSERT_TRUE(r_mv.ok()) << r_mv.status().ToString();
  EXPECT_EQ(r_mv->chunk.ToString(-1), r_orig->chunk.ToString(-1));
}

TEST_F(TuningTest, SubstituteReturnsNullWhenNoMatch) {
  LocalEngine engine(4);
  TuningAction action = MvAction();
  auto mv = BuildMaterializedView(meta_, action, &engine);
  ASSERT_TRUE(mv.ok());
  Binder binder(&meta_);
  auto q = binder.BindSql(FindQuery("Q4").sql);  // joins part, not dates
  ASSERT_TRUE(q.ok());
  DagPlanner dag(&meta_);
  auto logical = dag.Plan(*q);
  ASSERT_TRUE(logical.ok());
  EXPECT_EQ(SubstituteMvInPlan(*logical, action, *mv), nullptr);
}

TEST_F(TuningTest, WhatIfAcceptsMvForHotWorkload) {
  WhatIfService what_if(&meta_, estimator_.get());
  std::vector<WorkloadItem> workload = {
      {"Q3", FindQuery("Q3").sql, 2000.0}};  // very hot recurring join
  auto report = what_if.Evaluate(MvAction(), workload);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report->benefit_per_day, 0.0);
  EXPECT_TRUE(report->accepted) << report->ToString();
  EXPECT_GT(report->payback_days, 0.0);
  EXPECT_NE(report->ToString().find("ACCEPT"), std::string::npos);
}

TEST_F(TuningTest, WhatIfRejectsMvForColdWorkload) {
  WhatIfService what_if(&meta_, estimator_.get());
  std::vector<WorkloadItem> workload = {
      {"Q3", FindQuery("Q3").sql, 0.001}};  // once every ~3 years
  auto report = what_if.Evaluate(MvAction(), workload);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->accepted) << report->ToString();
  EXPECT_TRUE(std::isinf(report->payback_days));
}

TEST_F(TuningTest, WhatIfReclusterImprovesSelectiveScans) {
  // lineorder arrives ordered by orderkey; filtering on quantity cannot
  // prune. Reclustering by quantity should cut the selective Q10 scan.
  WhatIfService what_if(&meta_, estimator_.get());
  TuningAction action;
  action.kind = TuningAction::Kind::kRecluster;
  action.table = "lineorder";
  action.column = "lo_quantity";
  std::vector<WorkloadItem> workload = {
      {"Q10", FindQuery("Q10").sql, 5000.0}};
  auto report = what_if.Evaluate(action, workload);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report->per_query.size(), 1u);
  EXPECT_LT(report->per_query[0].cost_after,
            report->per_query[0].cost_before);
  EXPECT_GT(report->build_cost, 0.0);
}

TEST_F(TuningTest, ApplyMvRegistersAndBills) {
  WhatIfService what_if(&meta_, estimator_.get());
  std::vector<WorkloadItem> workload = {{"Q3", FindQuery("Q3").sql, 2000.0}};
  auto report = what_if.Evaluate(MvAction(), workload);
  ASSERT_TRUE(report.ok());
  CloudEnv env;
  LocalEngine engine(4);
  ASSERT_TRUE(what_if.Apply(*report, &meta_, &env, &engine, 0.0).ok());
  EXPECT_TRUE(meta_.HasTable("mv_lineorder_dates"));
  EXPECT_EQ(meta_.materialized_views().size(), 1u);
  EXPECT_GT(env.billing()->TotalForPrefix("tuning:"), 0.0);
}

TEST_F(TuningTest, AdvisorsProposeFromStatistics) {
  StatisticsService stats;
  Binder binder(&meta_);
  auto q3 = binder.BindSql(FindQuery("Q3").sql);
  auto q10 = binder.BindSql(FindQuery("Q10").sql);
  ASSERT_TRUE(q3.ok());
  ASSERT_TRUE(q10.ok());
  for (int i = 0; i < 20; ++i) {
    stats.Ingest(MakeExecutionRecord("Q3", i * 60.0, *q3, 1.0, 4.0, 0.01));
  }
  for (int i = 0; i < 5; ++i) {
    stats.Ingest(MakeExecutionRecord("Q10", i * 60.0, *q10, 1.0, 4.0, 0.01));
  }
  auto mvs = ProposeMvActions(stats, 2);
  ASSERT_FALSE(mvs.empty());
  EXPECT_EQ(mvs[0].mv_tables[0], "dates");
  EXPECT_EQ(mvs[0].mv_tables[1], "lineorder");

  auto reclusters = ProposeReclusterActions(stats, meta_, 3);
  ASSERT_FALSE(reclusters.empty());
  bool has_quantity = false;
  for (const auto& a : reclusters) {
    if (a.table == "lineorder" && a.column == "lo_quantity") {
      has_quantity = true;
    }
  }
  EXPECT_TRUE(has_quantity);
}

TEST_F(TuningTest, ActionDescriptions) {
  EXPECT_NE(MvAction().Describe().find("MATERIALIZED VIEW"),
            std::string::npos);
  TuningAction rec;
  rec.kind = TuningAction::Kind::kRecluster;
  rec.table = "t";
  rec.column = "c";
  EXPECT_EQ(rec.Describe(), "RECLUSTER t BY c");
}

}  // namespace
}  // namespace costdb
