#include <gtest/gtest.h>

#include "storage/table.h"

namespace costdb {
namespace {

TEST(TypesTest, PhysicalFamilies) {
  EXPECT_EQ(PhysicalTypeOf(LogicalType::kInt64), PhysicalType::kInt64);
  EXPECT_EQ(PhysicalTypeOf(LogicalType::kBool), PhysicalType::kInt64);
  EXPECT_EQ(PhysicalTypeOf(LogicalType::kDate), PhysicalType::kInt64);
  EXPECT_EQ(PhysicalTypeOf(LogicalType::kDouble), PhysicalType::kDouble);
  EXPECT_EQ(PhysicalTypeOf(LogicalType::kVarchar), PhysicalType::kString);
}

TEST(TypesTest, DateRoundTrip) {
  int64_t days = 0;
  ASSERT_TRUE(ParseDate("1970-01-01", &days));
  EXPECT_EQ(days, 0);
  ASSERT_TRUE(ParseDate("1995-03-15", &days));
  EXPECT_EQ(FormatDate(days), "1995-03-15");
  ASSERT_TRUE(ParseDate("2000-02-29", &days));  // leap year
  EXPECT_EQ(FormatDate(days), "2000-02-29");
  EXPECT_FALSE(ParseDate("2001-02-29", &days));  // not a leap year
  EXPECT_FALSE(ParseDate("garbage", &days));
  EXPECT_FALSE(ParseDate("2001-13-01", &days));
}

TEST(TypesTest, DateOrderingMatchesCalendar) {
  int64_t d1 = 0, d2 = 0;
  ASSERT_TRUE(ParseDate("1994-12-31", &d1));
  ASSERT_TRUE(ParseDate("1995-01-01", &d2));
  EXPECT_EQ(d2 - d1, 1);
}

TEST(ValueTest, ComparisonAcrossNumericFamilies) {
  EXPECT_TRUE(Value(int64_t{1}) < Value(2.5));
  EXPECT_TRUE(Value(int64_t{3}) == Value(3.0));
  EXPECT_TRUE(Value(std::string("a")) < Value(std::string("b")));
  EXPECT_TRUE(Value::Null() < Value(int64_t{0}));  // NULL sorts first
  EXPECT_FALSE(Value(int64_t{1}) == Value(std::string("1")));
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value(int64_t{42}).ToString(), "42");
  EXPECT_EQ(Value(std::string("hi")).ToString(), "hi");
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Bool(true).AsInt(), 1);
}

TEST(ColumnVectorTest, AppendAndGather) {
  ColumnVector v(LogicalType::kInt64);
  for (int64_t i = 0; i < 10; ++i) v.AppendInt(i * 10);
  EXPECT_EQ(v.size(), 10u);
  ColumnVector g = v.Gather({1, 3, 5});
  ASSERT_EQ(g.size(), 3u);
  EXPECT_EQ(g.GetInt(0), 10);
  EXPECT_EQ(g.GetInt(2), 50);
}

TEST(ColumnVectorTest, StringColumn) {
  ColumnVector v(LogicalType::kVarchar);
  v.AppendString("x");
  v.AppendString("y");
  EXPECT_EQ(v.GetString(1), "y");
  EXPECT_EQ(v.GetValue(0).ToString(), "x");
}

TEST(DataChunkTest, AppendRowsAndSlice) {
  DataChunk chunk({LogicalType::kInt64, LogicalType::kVarchar});
  chunk.AppendRow({Value(int64_t{1}), Value(std::string("a"))});
  chunk.AppendRow({Value(int64_t{2}), Value(std::string("b"))});
  chunk.AppendRow({Value(int64_t{3}), Value(std::string("c"))});
  EXPECT_EQ(chunk.num_rows(), 3u);
  chunk.Slice({0, 2});
  EXPECT_EQ(chunk.num_rows(), 2u);
  EXPECT_EQ(chunk.column(1).GetString(1), "c");
}

TEST(ZoneMapTest, BuildAndPrune) {
  ColumnVector v(LogicalType::kInt64);
  for (int64_t i = 10; i <= 20; ++i) v.AppendInt(i);
  ZoneMapEntry z = ZoneMapEntry::Build(v);
  EXPECT_EQ(z.min.AsInt(), 10);
  EXPECT_EQ(z.max.AsInt(), 20);
  EXPECT_TRUE(z.MayMatch(CompareOp::kEq, Value(int64_t{15})));
  EXPECT_FALSE(z.MayMatch(CompareOp::kEq, Value(int64_t{25})));
  EXPECT_FALSE(z.MayMatch(CompareOp::kLt, Value(int64_t{10})));
  EXPECT_TRUE(z.MayMatch(CompareOp::kLe, Value(int64_t{10})));
  EXPECT_FALSE(z.MayMatch(CompareOp::kGt, Value(int64_t{20})));
  EXPECT_TRUE(z.MayMatch(CompareOp::kGe, Value(int64_t{20})));
}

TEST(ZoneMapTest, NeOnlyPrunesConstantZone) {
  ColumnVector v(LogicalType::kInt64);
  v.AppendInt(7);
  v.AppendInt(7);
  ZoneMapEntry z = ZoneMapEntry::Build(v);
  EXPECT_FALSE(z.MayMatch(CompareOp::kNe, Value(int64_t{7})));
  EXPECT_TRUE(z.MayMatch(CompareOp::kNe, Value(int64_t{8})));
}

TEST(ZoneMapTest, EmptyColumnNeverPrunes) {
  ColumnVector v(LogicalType::kInt64);
  ZoneMapEntry z = ZoneMapEntry::Build(v);
  EXPECT_TRUE(z.MayMatch(CompareOp::kEq, Value(int64_t{1})));
}

TEST(CompareOpTest, SwapIsInvolutionOnInequalities) {
  EXPECT_EQ(SwapCompareOp(CompareOp::kLt), CompareOp::kGt);
  EXPECT_EQ(SwapCompareOp(SwapCompareOp(CompareOp::kLe)), CompareOp::kLe);
  EXPECT_EQ(SwapCompareOp(CompareOp::kEq), CompareOp::kEq);
}

class TableTest : public ::testing::Test {
 protected:
  Table MakeTable(size_t rows, size_t group_size = 100) {
    Table t("t", {{"id", LogicalType::kInt64}, {"val", LogicalType::kDouble}},
            group_size);
    DataChunk chunk({LogicalType::kInt64, LogicalType::kDouble});
    for (size_t i = 0; i < rows; ++i) {
      chunk.AppendRow({Value(static_cast<int64_t>(i)),
                       Value(static_cast<double>(i) * 0.5)});
    }
    t.Append(chunk);
    return t;
  }
};

TEST_F(TableTest, AppendSplitsIntoRowGroups) {
  Table t = MakeTable(250, 100);
  EXPECT_EQ(t.num_rows(), 250u);
  ASSERT_EQ(t.row_groups().size(), 3u);
  EXPECT_EQ(t.row_groups()[0].num_rows(), 100u);
  EXPECT_EQ(t.row_groups()[2].num_rows(), 50u);
}

TEST_F(TableTest, ZoneMapsTrackGroups) {
  Table t = MakeTable(200, 100);
  EXPECT_EQ(t.row_groups()[0].zones[0].min.AsInt(), 0);
  EXPECT_EQ(t.row_groups()[0].zones[0].max.AsInt(), 99);
  EXPECT_EQ(t.row_groups()[1].zones[0].min.AsInt(), 100);
}

TEST_F(TableTest, PruneFractionOnSortedData) {
  Table t = MakeTable(1000, 100);
  // id < 100 only touches the first of 10 groups.
  auto frac = t.PruneFraction("id", CompareOp::kLt, Value(int64_t{100}));
  ASSERT_TRUE(frac.ok());
  EXPECT_NEAR(*frac, 0.9, 1e-9);
  EXPECT_TRUE(
      t.PruneFraction("nope", CompareOp::kEq, Value(int64_t{0})).status().IsNotFound());
}

TEST_F(TableTest, ClusterByImprovesPruning) {
  // Build a table where ids are round-robin scattered, so zone maps overlap.
  Table t("t", {{"id", LogicalType::kInt64}}, 100);
  DataChunk chunk({LogicalType::kInt64});
  for (int64_t i = 0; i < 1000; ++i) chunk.AppendRow({Value(i % 10)});
  t.Append(chunk);
  auto before = t.PruneFraction("id", CompareOp::kEq, Value(int64_t{3}));
  ASSERT_TRUE(before.ok());
  EXPECT_NEAR(*before, 0.0, 1e-9);  // every group spans 0..9
  ASSERT_TRUE(t.ClusterBy("id").ok());
  EXPECT_EQ(t.clustering_key(), "id");
  EXPECT_EQ(t.num_rows(), 1000u);
  auto after = t.PruneFraction("id", CompareOp::kEq, Value(int64_t{3}));
  ASSERT_TRUE(after.ok());
  EXPECT_GE(*after, 0.8);  // only the group(s) holding value 3 remain
}

TEST_F(TableTest, ClusterByPreservesRowMultiset) {
  Table t = MakeTable(500, 64);
  ASSERT_TRUE(t.ClusterBy("val").ok());
  DataChunk all = t.Scan();
  ASSERT_EQ(all.num_rows(), 500u);
  double sum = 0;
  for (size_t i = 0; i < all.num_rows(); ++i) {
    sum += all.column(1).GetDouble(i);
  }
  EXPECT_NEAR(sum, 0.5 * (499.0 * 500.0 / 2.0), 1e-6);
}

TEST_F(TableTest, EstimateBytesScalesWithRows) {
  Table small = MakeTable(100);
  Table big = MakeTable(1000);
  EXPECT_NEAR(big.EstimateBytes() / small.EstimateBytes(), 10.0, 1e-9);
  // Two columns of width 8 each.
  EXPECT_NEAR(small.EstimateBytes(), 100 * 16.0, 1e-9);
}

TEST_F(TableTest, ColumnIndexLookup) {
  Table t = MakeTable(10);
  EXPECT_EQ(t.ColumnIndex("val").value(), 1u);
  EXPECT_TRUE(t.ColumnIndex("missing").status().IsNotFound());
}

}  // namespace
}  // namespace costdb
