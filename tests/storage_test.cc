#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "cloud/object_store.h"
#include "service/database.h"
#include "service/session.h"
#include "storage/block/block_reader.h"
#include "storage/block/block_writer.h"
#include "storage/cache.h"
#include "storage/persistent.h"
#include "storage/table.h"
#include "workload/ssb.h"

namespace costdb {
namespace {

TEST(TypesTest, PhysicalFamilies) {
  EXPECT_EQ(PhysicalTypeOf(LogicalType::kInt64), PhysicalType::kInt64);
  EXPECT_EQ(PhysicalTypeOf(LogicalType::kBool), PhysicalType::kInt64);
  EXPECT_EQ(PhysicalTypeOf(LogicalType::kDate), PhysicalType::kInt64);
  EXPECT_EQ(PhysicalTypeOf(LogicalType::kDouble), PhysicalType::kDouble);
  EXPECT_EQ(PhysicalTypeOf(LogicalType::kVarchar), PhysicalType::kString);
}

TEST(TypesTest, DateRoundTrip) {
  int64_t days = 0;
  ASSERT_TRUE(ParseDate("1970-01-01", &days));
  EXPECT_EQ(days, 0);
  ASSERT_TRUE(ParseDate("1995-03-15", &days));
  EXPECT_EQ(FormatDate(days), "1995-03-15");
  ASSERT_TRUE(ParseDate("2000-02-29", &days));  // leap year
  EXPECT_EQ(FormatDate(days), "2000-02-29");
  EXPECT_FALSE(ParseDate("2001-02-29", &days));  // not a leap year
  EXPECT_FALSE(ParseDate("garbage", &days));
  EXPECT_FALSE(ParseDate("2001-13-01", &days));
}

TEST(TypesTest, DateOrderingMatchesCalendar) {
  int64_t d1 = 0, d2 = 0;
  ASSERT_TRUE(ParseDate("1994-12-31", &d1));
  ASSERT_TRUE(ParseDate("1995-01-01", &d2));
  EXPECT_EQ(d2 - d1, 1);
}

TEST(ValueTest, ComparisonAcrossNumericFamilies) {
  EXPECT_TRUE(Value(int64_t{1}) < Value(2.5));
  EXPECT_TRUE(Value(int64_t{3}) == Value(3.0));
  EXPECT_TRUE(Value(std::string("a")) < Value(std::string("b")));
  EXPECT_TRUE(Value::Null() < Value(int64_t{0}));  // NULL sorts first
  EXPECT_FALSE(Value(int64_t{1}) == Value(std::string("1")));
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value(int64_t{42}).ToString(), "42");
  EXPECT_EQ(Value(std::string("hi")).ToString(), "hi");
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Bool(true).AsInt(), 1);
}

TEST(ColumnVectorTest, AppendAndGather) {
  ColumnVector v(LogicalType::kInt64);
  for (int64_t i = 0; i < 10; ++i) v.AppendInt(i * 10);
  EXPECT_EQ(v.size(), 10u);
  ColumnVector g = v.Gather({1, 3, 5});
  ASSERT_EQ(g.size(), 3u);
  EXPECT_EQ(g.GetInt(0), 10);
  EXPECT_EQ(g.GetInt(2), 50);
}

TEST(ColumnVectorTest, StringColumn) {
  ColumnVector v(LogicalType::kVarchar);
  v.AppendString("x");
  v.AppendString("y");
  EXPECT_EQ(v.GetString(1), "y");
  EXPECT_EQ(v.GetValue(0).ToString(), "x");
}

TEST(DataChunkTest, AppendRowsAndSlice) {
  DataChunk chunk({LogicalType::kInt64, LogicalType::kVarchar});
  chunk.AppendRow({Value(int64_t{1}), Value(std::string("a"))});
  chunk.AppendRow({Value(int64_t{2}), Value(std::string("b"))});
  chunk.AppendRow({Value(int64_t{3}), Value(std::string("c"))});
  EXPECT_EQ(chunk.num_rows(), 3u);
  chunk.Slice({0, 2});
  EXPECT_EQ(chunk.num_rows(), 2u);
  EXPECT_EQ(chunk.column(1).GetString(1), "c");
}

TEST(ZoneMapTest, BuildAndPrune) {
  ColumnVector v(LogicalType::kInt64);
  for (int64_t i = 10; i <= 20; ++i) v.AppendInt(i);
  ZoneMapEntry z = ZoneMapEntry::Build(v);
  EXPECT_EQ(z.min.AsInt(), 10);
  EXPECT_EQ(z.max.AsInt(), 20);
  EXPECT_TRUE(z.MayMatch(CompareOp::kEq, Value(int64_t{15})));
  EXPECT_FALSE(z.MayMatch(CompareOp::kEq, Value(int64_t{25})));
  EXPECT_FALSE(z.MayMatch(CompareOp::kLt, Value(int64_t{10})));
  EXPECT_TRUE(z.MayMatch(CompareOp::kLe, Value(int64_t{10})));
  EXPECT_FALSE(z.MayMatch(CompareOp::kGt, Value(int64_t{20})));
  EXPECT_TRUE(z.MayMatch(CompareOp::kGe, Value(int64_t{20})));
}

TEST(ZoneMapTest, NeOnlyPrunesConstantZone) {
  ColumnVector v(LogicalType::kInt64);
  v.AppendInt(7);
  v.AppendInt(7);
  ZoneMapEntry z = ZoneMapEntry::Build(v);
  EXPECT_FALSE(z.MayMatch(CompareOp::kNe, Value(int64_t{7})));
  EXPECT_TRUE(z.MayMatch(CompareOp::kNe, Value(int64_t{8})));
}

TEST(ZoneMapTest, EmptyColumnNeverPrunes) {
  ColumnVector v(LogicalType::kInt64);
  ZoneMapEntry z = ZoneMapEntry::Build(v);
  EXPECT_TRUE(z.MayMatch(CompareOp::kEq, Value(int64_t{1})));
}

TEST(CompareOpTest, SwapIsInvolutionOnInequalities) {
  EXPECT_EQ(SwapCompareOp(CompareOp::kLt), CompareOp::kGt);
  EXPECT_EQ(SwapCompareOp(SwapCompareOp(CompareOp::kLe)), CompareOp::kLe);
  EXPECT_EQ(SwapCompareOp(CompareOp::kEq), CompareOp::kEq);
}

class TableTest : public ::testing::Test {
 protected:
  Table MakeTable(size_t rows, size_t group_size = 100) {
    Table t("t", {{"id", LogicalType::kInt64}, {"val", LogicalType::kDouble}},
            group_size);
    DataChunk chunk({LogicalType::kInt64, LogicalType::kDouble});
    for (size_t i = 0; i < rows; ++i) {
      chunk.AppendRow({Value(static_cast<int64_t>(i)),
                       Value(static_cast<double>(i) * 0.5)});
    }
    t.Append(chunk);
    return t;
  }
};

TEST_F(TableTest, AppendSplitsIntoRowGroups) {
  Table t = MakeTable(250, 100);
  EXPECT_EQ(t.num_rows(), 250u);
  ASSERT_EQ(t.row_groups().size(), 3u);
  EXPECT_EQ(t.row_groups()[0].num_rows(), 100u);
  EXPECT_EQ(t.row_groups()[2].num_rows(), 50u);
}

TEST_F(TableTest, ZoneMapsTrackGroups) {
  Table t = MakeTable(200, 100);
  EXPECT_EQ(t.row_groups()[0].zones[0].min.AsInt(), 0);
  EXPECT_EQ(t.row_groups()[0].zones[0].max.AsInt(), 99);
  EXPECT_EQ(t.row_groups()[1].zones[0].min.AsInt(), 100);
}

TEST_F(TableTest, PruneFractionOnSortedData) {
  Table t = MakeTable(1000, 100);
  // id < 100 only touches the first of 10 groups.
  auto frac = t.PruneFraction("id", CompareOp::kLt, Value(int64_t{100}));
  ASSERT_TRUE(frac.ok());
  EXPECT_NEAR(*frac, 0.9, 1e-9);
  EXPECT_TRUE(
      t.PruneFraction("nope", CompareOp::kEq, Value(int64_t{0})).status().IsNotFound());
}

TEST_F(TableTest, ClusterByImprovesPruning) {
  // Build a table where ids are round-robin scattered, so zone maps overlap.
  Table t("t", {{"id", LogicalType::kInt64}}, 100);
  DataChunk chunk({LogicalType::kInt64});
  for (int64_t i = 0; i < 1000; ++i) chunk.AppendRow({Value(i % 10)});
  t.Append(chunk);
  auto before = t.PruneFraction("id", CompareOp::kEq, Value(int64_t{3}));
  ASSERT_TRUE(before.ok());
  EXPECT_NEAR(*before, 0.0, 1e-9);  // every group spans 0..9
  ASSERT_TRUE(t.ClusterBy("id").ok());
  EXPECT_EQ(t.clustering_key(), "id");
  EXPECT_EQ(t.num_rows(), 1000u);
  auto after = t.PruneFraction("id", CompareOp::kEq, Value(int64_t{3}));
  ASSERT_TRUE(after.ok());
  EXPECT_GE(*after, 0.8);  // only the group(s) holding value 3 remain
}

TEST_F(TableTest, ClusterByPreservesRowMultiset) {
  Table t = MakeTable(500, 64);
  ASSERT_TRUE(t.ClusterBy("val").ok());
  DataChunk all = t.Scan();
  ASSERT_EQ(all.num_rows(), 500u);
  double sum = 0;
  for (size_t i = 0; i < all.num_rows(); ++i) {
    sum += all.column(1).GetDouble(i);
  }
  EXPECT_NEAR(sum, 0.5 * (499.0 * 500.0 / 2.0), 1e-6);
}

TEST_F(TableTest, EstimateBytesScalesWithRows) {
  Table small = MakeTable(100);
  Table big = MakeTable(1000);
  EXPECT_NEAR(big.EstimateBytes() / small.EstimateBytes(), 10.0, 1e-9);
  // Two columns of width 8 each.
  EXPECT_NEAR(small.EstimateBytes(), 100 * 16.0, 1e-9);
}

TEST_F(TableTest, ColumnIndexLookup) {
  Table t = MakeTable(10);
  EXPECT_EQ(t.ColumnIndex("val").value(), 1u);
  EXPECT_TRUE(t.ColumnIndex("missing").status().IsNotFound());
}

// ------------------------------------------------------------ block format

std::vector<LogicalType> AllTypes() {
  return {LogicalType::kInt64, LogicalType::kDouble, LogicalType::kVarchar,
          LogicalType::kBool, LogicalType::kDate};
}

/// Every column type, with staggered NULL runs so validity pages and the
/// NULL-slot fillers are exercised per column.
DataChunk AllTypesChunk(size_t rows) {
  DataChunk chunk(AllTypes());
  for (size_t r = 0; r < rows; ++r) {
    const auto i = static_cast<int64_t>(r);
    std::vector<Value> row = {Value(i), Value(0.25 * static_cast<double>(r)),
                              Value("s" + std::to_string(r % 97)),
                              Value::Bool(r % 3 == 0),
                              Value(static_cast<int64_t>(9000 + r % 365))};
    for (size_t c = 0; c < row.size(); ++c) {
      if ((r + c) % 7 == 0) row[c] = Value::Null();
    }
    chunk.AppendRow(row);
  }
  return chunk;
}

void ExpectChunksBitIdentical(const DataChunk& a, const DataChunk& b) {
  ASSERT_EQ(a.num_columns(), b.num_columns());
  ASSERT_EQ(a.num_rows(), b.num_rows());
  for (size_t c = 0; c < a.num_columns(); ++c) {
    for (size_t r = 0; r < a.num_rows(); ++r) {
      const Value va = a.column(c).GetValue(r);
      const Value vb = b.column(c).GetValue(r);
      ASSERT_EQ(va.is_null(), vb.is_null()) << "col " << c << " row " << r;
      if (!va.is_null()) {
        ASSERT_TRUE(va == vb) << "col " << c << " row " << r << ": "
                              << va.ToString() << " vs " << vb.ToString();
      }
    }
  }
}

TEST(BlockFormatTest, RoundTripAllTypesWithNulls) {
  const std::vector<LogicalType> types = AllTypes();
  const DataChunk chunk = AllTypesChunk(513);
  block::BlockWriter writer(types);
  std::vector<ZoneMapEntry> zones;
  block::BlockLayout layout;
  const std::string bytes = writer.Encode(chunk, &zones, &layout);

  EXPECT_EQ(layout.rows, 513u);
  EXPECT_EQ(layout.total_bytes, static_cast<double>(bytes.size()));
  ASSERT_EQ(zones.size(), types.size());
  ASSERT_EQ(layout.column_bytes.size(), types.size());
  for (double b : layout.column_bytes) EXPECT_GT(b, 0.0);

  auto decoded = block::BlockReader::Decode(bytes, types);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ExpectChunksBitIdentical(chunk, decoded->chunk);
  ASSERT_EQ(decoded->zones.size(), types.size());
  // Zone maps survive the trip (pruning decisions are made from the
  // decoded footer, never from re-scanning payloads).
  EXPECT_TRUE(decoded->zones[0].min == zones[0].min);
  EXPECT_TRUE(decoded->zones[0].max == zones[0].max);
}

TEST(BlockFormatTest, DecodeRejectsCorruptionAndTruncation) {
  const std::vector<LogicalType> types = AllTypes();
  block::BlockWriter writer(types);
  std::vector<ZoneMapEntry> zones;
  block::BlockLayout layout;
  std::string bytes = writer.Encode(AllTypesChunk(64), &zones, &layout);

  // Every single-byte flip must be caught by a page or footer checksum
  // (spot-check a spread of offsets rather than all of them).
  for (size_t pos : {size_t{9}, bytes.size() / 3, bytes.size() / 2,
                     bytes.size() - 10}) {
    std::string bad = bytes;
    bad[pos] = static_cast<char>(bad[pos] ^ 0x5A);
    EXPECT_FALSE(block::BlockReader::Decode(bad, types).ok())
        << "flip at " << pos;
  }
  EXPECT_FALSE(block::BlockReader::Decode(bytes.substr(0, 12), types).ok());
  EXPECT_FALSE(block::BlockReader::Decode("", types).ok());
  // Schema mismatch is a decode error, not a crash.
  EXPECT_FALSE(
      block::BlockReader::Decode(bytes, {LogicalType::kInt64}).ok());
}

// -------------------------------------------------------------- block cache

std::shared_ptr<const DataChunk> TinyChunk() {
  DataChunk c({LogicalType::kInt64});
  c.AppendRow({Value(int64_t{1})});
  return std::make_shared<const DataChunk>(std::move(c));
}

TEST(BlockCacheTest, GdsfKeepsTheDearerBlock) {
  BlockCache cache(1300);
  BlockCacheStats stats;
  // Same size, different re-materialization cost: when space runs out the
  // cheap-to-refetch block is the victim.
  cache.Insert("cheap", TinyChunk(), 600.0, /*miss_cost=*/1e-6, &stats);
  cache.Insert("dear", TinyChunk(), 600.0, /*miss_cost=*/1e-3, &stats);
  EXPECT_EQ(cache.entries(), 2u);
  cache.Insert("new", TinyChunk(), 600.0, /*miss_cost=*/1e-4, &stats);
  EXPECT_EQ(stats.evictions, 1);
  EXPECT_EQ(cache.Lookup("cheap", &stats), nullptr);
  EXPECT_NE(cache.Lookup("dear", &stats), nullptr);
  EXPECT_NE(cache.Lookup("new", &stats), nullptr);
}

TEST(BlockCacheTest, RejectsBlocksLargerThanBudgetAndCountsTraffic) {
  BlockCache cache(1000);
  BlockCacheStats stats;
  cache.Insert("whale", TinyChunk(), 5000.0, 1e-3, &stats);
  EXPECT_EQ(stats.rejected, 1);
  EXPECT_EQ(cache.Lookup("whale", &stats), nullptr);
  EXPECT_EQ(cache.entries(), 0u);

  cache.RecordMiss(5000.0, 0.01, 4e-7, &stats);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.bytes_read, 5000.0);
  EXPECT_EQ(stats.miss_get_dollars, 4e-7);
  // Lifetime totals see the same traffic (stats is per-query).
  EXPECT_EQ(cache.totals().misses, 1);
}

// --------------------------------------------------------- persistent tier

std::string FreshSpillDir(const std::string& name) {
  auto dir = std::filesystem::temp_directory_path() / ("costdb_test_" + name);
  std::filesystem::remove_all(dir);
  return dir.string();
}

struct PersistentFixture {
  PricingCatalog pricing = PricingCatalog::Default();
  SimulatedObjectStore store{&pricing};
  BlockCache cache;
  StorageOptions options;

  explicit PersistentFixture(const std::string& name,
                             size_t cache_bytes = 4u << 20)
      : cache(cache_bytes) {
    EXPECT_TRUE(store.EnableSpill(FreshSpillDir(name)).ok());
    options.memtable_flush_rows = 128;
    options.level_fanout = 2;
  }

  std::shared_ptr<TableStorage> MakeStorage(const Table& table) {
    std::vector<LogicalType> types;
    for (const auto& c : table.columns()) types.push_back(c.type);
    StoragePricing price;
    price.get_dollars = pricing.per_1k_get_requests / 1000.0;
    price.put_dollars = pricing.per_1k_put_requests / 1000.0;
    price.node_dollars_per_second =
        pricing.default_node().price_per_second();
    return std::make_shared<TableStorage>(
        table.name(), std::move(types), table.row_group_size(), &store,
        &cache, options, [price] { return price; });
  }
};

TEST(PersistentTableTest, AttachEvictsAndScanIsBitIdentical) {
  PersistentFixture fx("attach");
  auto table = std::make_shared<Table>(
      "t", std::vector<ColumnDef>{{"i", LogicalType::kInt64},
                                  {"d", LogicalType::kDouble},
                                  {"s", LogicalType::kVarchar},
                                  {"b", LogicalType::kBool},
                                  {"dt", LogicalType::kDate}},
      /*row_group_size=*/64);
  const DataChunk data = AllTypesChunk(500);
  table->Append(data);
  const DataChunk ram_scan = table->Scan();

  ASSERT_TRUE(table->AttachStorage(fx.MakeStorage(*table)).ok());
  EXPECT_TRUE(table->persistent());
  EXPECT_EQ(table->memtable_rows(), 0u);  // attach flushed everything
  EXPECT_GT(fx.store.put_requests(), 0);
  EXPECT_EQ(table->num_rows(), 500u);
  for (const auto& g : table->row_groups()) EXPECT_FALSE(g.resident);

  // Cold scan: every group pages back through the cache, bit-identical.
  auto cold = table->ScanPinned();
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  ExpectChunksBitIdentical(ram_scan, *cold);
  EXPECT_GT(fx.store.get_requests(), 0);
  EXPECT_GT(fx.cache.totals().misses, 0);

  // Second scan is served from the cache: no new GETs.
  const int64_t gets_before = fx.store.get_requests();
  auto warm = table->ScanPinned();
  ASSERT_TRUE(warm.ok());
  ExpectChunksBitIdentical(ram_scan, *warm);
  EXPECT_EQ(fx.store.get_requests(), gets_before);
}

TEST(PersistentTableTest, AppendAutoFlushesPastThreshold) {
  PersistentFixture fx("autoflush");
  auto table = std::make_shared<Table>(
      "t", std::vector<ColumnDef>{{"i", LogicalType::kInt64}},
      /*row_group_size=*/64);
  ASSERT_TRUE(table->AttachStorage(fx.MakeStorage(*table)).ok());

  DataChunk small({LogicalType::kInt64});
  for (int64_t i = 0; i < 100; ++i) small.AppendRow({Value(i)});
  table->Append(small);
  EXPECT_TRUE(table->last_storage_error().ok());
  EXPECT_EQ(table->memtable_rows(), 100u);  // under the 128-row threshold

  table->Append(small);  // 200 resident rows: crosses, flushes
  EXPECT_TRUE(table->last_storage_error().ok());
  EXPECT_EQ(table->memtable_rows(), 0u);
  EXPECT_EQ(table->num_rows(), 200u);

  auto all = table->ScanPinned();
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->num_rows(), 200u);
  // Flush order preserves insertion order: 0..99 twice.
  EXPECT_EQ(all->column(0).GetInt(0), 0);
  EXPECT_EQ(all->column(0).GetInt(99), 99);
  EXPECT_EQ(all->column(0).GetInt(100), 0);
  EXPECT_EQ(all->column(0).GetInt(199), 99);
}

TEST(PersistentTableTest, ForcedCompactionThinsBlocksAndBumpsLayout) {
  PersistentFixture fx("compact");
  auto table = std::make_shared<Table>(
      "t", std::vector<ColumnDef>{{"i", LogicalType::kInt64}},
      /*row_group_size=*/32);
  DataChunk data({LogicalType::kInt64});
  for (int64_t i = 0; i < 400; ++i) data.AppendRow({Value(i)});
  table->Append(data);
  ASSERT_TRUE(table->AttachStorage(fx.MakeStorage(*table)).ok());
  const auto before = table->storage()->Summary();
  ASSERT_GT(before.blocks, 1u);
  const uint64_t layout_before = table->layout_version();

  auto merged = table->CompactStorage(/*force=*/true);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_TRUE(*merged);
  EXPECT_GT(table->layout_version(), layout_before);

  const auto after = table->storage()->Summary();
  EXPECT_EQ(after.compactions, 1u);
  EXPECT_LT(after.blocks, before.blocks);  // bigger blocks, fewer GETs
  EXPECT_EQ(after.rows, before.rows);

  // Rows and order survive the merge.
  auto all = table->ScanPinned();
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->num_rows(), 400u);
  for (int64_t i = 0; i < 400; ++i) {
    ASSERT_EQ(all->column(0).GetInt(static_cast<size_t>(i)), i);
  }
}

// ------------------------------------------------- database-level wiring

std::string SortedLines(const QueryResult& r) {
  std::string rendered = r.ToString(1 << 20);
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < rendered.size()) {
    size_t end = rendered.find('\n', start);
    if (end == std::string::npos) end = rendered.size();
    lines.push_back(rendered.substr(start, end - start));
    start = end + 1;
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const auto& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

std::unique_ptr<Database> MakePersistentSsbDb(const std::string& spill_name,
                                              size_t cache_bytes,
                                              bool result_cache = false) {
  DatabaseOptions opts;
  opts.exec_threads = 2;
  opts.enable_persistent_storage = true;
  opts.block_cache_bytes = cache_bytes;
  opts.storage_spill_dir = FreshSpillDir(spill_name);
  opts.enable_calibration = false;  // isolate layout-driven invalidation
  opts.enable_result_cache = result_cache;
  auto db = std::make_unique<Database>(opts);
  SsbOptions data;
  data.scale = 0.002;
  data.row_group_size = 256;
  LoadSsb(db->meta(), data);
  return db;
}

TEST(DatabaseStorageTest, PersistedScansBitIdenticalAcrossEngineTiers) {
  auto db = MakePersistentSsbDb("db_tiers", 8u << 20);
  const std::vector<std::pair<std::string, UserConstraint>> runs = {
      // Fused tier: Q1's conjunctive scan filter is the fuse_kernels
      // pass's home turf.
      {FindQuery("Q1").sql, UserConstraint()},
      // Vectorized (non-fused) tier: a disjunctive predicate.
      {"SELECT lo_shipmode, count(*) AS n, sum(lo_revenue) AS rev "
       "FROM lineorder WHERE lo_quantity < 10 OR lo_discount = 2 "
       "GROUP BY lo_shipmode ORDER BY rev DESC",
       UserConstraint()},
      // Sharded tier: same rows through contiguous row-group shares.
      {FindQuery("Q2").sql, UserConstraint().WithWorkers(2)},
  };

  std::vector<std::string> ram_results;
  for (const auto& [sql, constraint] : runs) {
    auto r = db->ExecuteSql(sql, constraint);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->storage.misses + r->storage.hits, 0);  // still RAM
    ram_results.push_back(SortedLines(r->result));
  }

  ASSERT_TRUE(db->PersistTable("lineorder").ok());
  ASSERT_GT(db->storage_store()->put_requests(), 0);

  for (size_t i = 0; i < runs.size(); ++i) {
    auto cold = db->ExecuteSql(runs[i].first, runs[i].second);
    ASSERT_TRUE(cold.ok()) << cold.status().ToString();
    EXPECT_EQ(SortedLines(cold->result), ram_results[i]) << runs[i].first;
  }
  // The whole suite scanned cold blocks at least once.
  EXPECT_GT(db->block_cache()->totals().misses, 0);
}

TEST(DatabaseStorageTest, TableLargerThanCacheScansBitIdentical) {
  // A cache far smaller than one decoded block: every pin is a miss (or a
  // rejected admission) and the scan must still stream every row.
  auto db = MakePersistentSsbDb("db_thrash", /*cache_bytes=*/4096);
  const std::string sql = FindQuery("Q2").sql;
  auto ram = db->ExecuteSql(sql, UserConstraint());
  ASSERT_TRUE(ram.ok());

  ASSERT_TRUE(db->PersistTable("lineorder").ok());
  auto cold = db->ExecuteSql(sql, UserConstraint());
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_EQ(SortedLines(cold->result), SortedLines(ram->result));
  EXPECT_GT(cold->storage.misses, 0);
  const auto totals = db->block_cache()->totals();
  EXPECT_GT(totals.rejected + totals.evictions, 0);

  // Re-running pays the misses again — nothing fits, nothing is served
  // stale.
  auto again = db->ExecuteSql(sql, UserConstraint());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(SortedLines(again->result), SortedLines(ram->result));
  EXPECT_GT(again->storage.misses, 0);
}

TEST(DatabaseStorageTest, BilledRequestsMatchStoreCountersExactly) {
  auto db = MakePersistentSsbDb("db_billing", 8u << 20);
  ASSERT_TRUE(db->PersistTable("lineorder").ok());
  auto r = db->ExecuteSql(FindQuery("Q2").sql, UserConstraint());
  ASSERT_TRUE(r.ok());
  ASSERT_GT(r->storage.misses, 0);

  const auto billed = db->SettleStorageRequests();
  // Dollar conservation: the billing layer charged exactly the requests
  // the store served — GETs from scans (and any compactions), PUTs from
  // flushes.
  EXPECT_EQ(billed.gets, db->storage_store()->get_requests());
  EXPECT_EQ(billed.puts, db->storage_store()->put_requests());
  const auto breakdown = db->billing_snapshot().Breakdown();
  ASSERT_TRUE(breakdown.count("storage:get"));
  ASSERT_TRUE(breakdown.count("storage:put"));
  EXPECT_NEAR(breakdown.at("storage:get") + breakdown.at("storage:put"),
              billed.dollars, 1e-12);

  // Settling twice without new traffic charges nothing more.
  const auto again = db->SettleStorageRequests();
  EXPECT_EQ(again.gets, billed.gets);
  EXPECT_NEAR(again.dollars, billed.dollars, 1e-12);

  // The tenant-side attribution saw the same GET fees per cold read.
  Dollars per_get = PricingCatalog::Default().per_1k_get_requests / 1000.0;
  EXPECT_NEAR(r->storage.miss_get_dollars,
              static_cast<double>(r->storage.misses) * per_get, 1e-12);
}

TEST(DatabaseStorageTest, CompactionInvalidatesResultCache) {
  auto db = MakePersistentSsbDb("db_resultcache", 8u << 20,
                                /*result_cache=*/true);
  ASSERT_TRUE(db->PersistTable("lineorder").ok());

  Session session(db.get());
  const std::string sql = FindQuery("Q2").sql;
  auto first = session.ExecuteSql(sql, UserConstraint());
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_FALSE(first->result_cache_hit);
  auto second = session.ExecuteSql(sql, UserConstraint());
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->result_cache_hit);

  // A forced merge rewrites the physical layout; layout_version bumps and
  // the cached rows must not be served again.
  auto merged = db->CompactTable("lineorder", /*force=*/true);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  ASSERT_TRUE(*merged);

  auto third = session.ExecuteSql(sql, UserConstraint());
  ASSERT_TRUE(third.ok());
  EXPECT_FALSE(third->result_cache_hit);
  EXPECT_EQ(SortedLines(third->result), SortedLines(first->result));
}

TEST(DatabaseStorageTest, CatalogReportsBlockManifest) {
  auto db = MakePersistentSsbDb("db_manifest", 8u << 20);
  ASSERT_TRUE(db->PersistTable("lineorder").ok());

  auto manifest = db->meta()->GetBlockManifest("lineorder");
  ASSERT_TRUE(manifest.ok()) << manifest.status().ToString();
  EXPECT_GT(manifest->blocks, 0u);
  EXPECT_GE(manifest->flushes, 1u);
  auto lineorder = db->meta()->GetTable("lineorder");
  ASSERT_TRUE(lineorder.ok());
  EXPECT_EQ(manifest->rows, (*lineorder)->num_rows());

  // RAM-resident and unknown tables are typed errors, not crashes.
  EXPECT_TRUE(
      db->meta()->GetBlockManifest("dates").status().IsInvalidArgument());
  EXPECT_TRUE(db->meta()->GetBlockManifest("nope").status().IsNotFound());
}

TEST(DatabaseStorageTest, PersistTableGuards) {
  {
    Database db;  // persistence off by default
    EXPECT_TRUE(db.PersistTable("anything").IsNotSupported());
    EXPECT_EQ(db.storage_store(), nullptr);
  }
  auto db = MakePersistentSsbDb("db_guards", 8u << 20);
  EXPECT_TRUE(db->PersistTable("nope").IsNotFound());
  ASSERT_TRUE(db->PersistTable("lineorder").ok());
  EXPECT_TRUE(db->PersistTable("lineorder").IsAlreadyExists());
  EXPECT_TRUE(db->CompactTable("dates").status().IsInvalidArgument());
}

}  // namespace
}  // namespace costdb
