#include <gtest/gtest.h>

#include "cloud/cloud_env.h"

namespace costdb {
namespace {

TEST(PricingTest, DefaultCatalogHasShapes) {
  auto catalog = PricingCatalog::Default();
  ASSERT_GE(catalog.instance_types().size(), 4u);
  auto c8 = catalog.Find("c8");
  ASSERT_TRUE(c8.ok());
  EXPECT_EQ(c8->vcpus, 8);
  EXPECT_NEAR(c8->price_per_second(), 0.40 / 3600.0, 1e-12);
}

TEST(PricingTest, UnknownInstanceTypeNotFound) {
  auto catalog = PricingCatalog::Default();
  EXPECT_TRUE(catalog.Find("gpu-monster").status().IsNotFound());
}

TEST(TieredCostTest, EmptyScheduleIsFlat) {
  EXPECT_DOUBLE_EQ(TieredCost(0.0, 10.0, {}, 2.0), 20.0);
  EXPECT_DOUBLE_EQ(TieredCost(5.0, 7.0, {}, 2.0), 4.0);
}

TEST(TieredCostTest, ZeroOrNegativeSpanCostsNothing) {
  TieredSchedule tiers = {{10.0, 2.0}};
  EXPECT_DOUBLE_EQ(TieredCost(5.0, 5.0, tiers, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(TieredCost(7.0, 5.0, tiers, 1.0), 0.0);
}

TEST(TieredCostTest, ConsumptionWithinFirstTier) {
  TieredSchedule tiers = {{10.0, 2.0}, {100.0, 1.0}};
  EXPECT_DOUBLE_EQ(TieredCost(0.0, 4.0, tiers, 99.0), 8.0);
}

TEST(TieredCostTest, SpanAcrossBoundarySplitsAtTheBoundary) {
  TieredSchedule tiers = {{10.0, 2.0}, {100.0, 1.0}};
  // 6 units at 2.0 up to the boundary, 5 units at 1.0 past it.
  EXPECT_DOUBLE_EQ(TieredCost(4.0, 15.0, tiers, 99.0), 17.0);
}

TEST(TieredCostTest, ResumingMidTierChargesThatTiersRate) {
  TieredSchedule tiers = {{10.0, 2.0}, {100.0, 1.0}};
  // A tenant already 20 units in buys purely at the second tier's rate —
  // the cumulative position, not the span, decides the price level.
  EXPECT_DOUBLE_EQ(TieredCost(20.0, 30.0, tiers, 99.0), 10.0);
}

TEST(TieredCostTest, BeyondLastBoundaryUsesLastRate) {
  TieredSchedule tiers = {{10.0, 2.0}, {100.0, 0.5}};
  EXPECT_DOUBLE_EQ(TieredCost(100.0, 200.0, tiers, 99.0), 50.0);
  // Spanning the last boundary: 50 inside the last tier + 100 beyond,
  // both at the last rate.
  EXPECT_DOUBLE_EQ(TieredCost(50.0, 200.0, tiers, 99.0), 75.0);
}

TEST(TieredCostTest, MarginalChargesTelescope) {
  // Billing run by run from the cumulative position must sum to one fold
  // over the whole consumption — the invariant SettleTenantBill leans on.
  TieredSchedule tiers = {{1.0, 4.0}, {5.0, 2.0}, {20.0, 1.0}};
  double cursor = 0.0;
  Dollars summed = 0.0;
  for (double step : {0.4, 0.9, 2.2, 6.5, 12.0, 3.0}) {
    summed += TieredCost(cursor, cursor + step, tiers, 99.0);
    cursor += step;
  }
  EXPECT_NEAR(summed, TieredCost(0.0, cursor, tiers, 99.0), 1e-12);
}

TEST(PricingTest, PriceLadderIsLinearInVcpus) {
  // Required for the paper's "100 machines x 1 min == 1 machine x 100 min".
  auto catalog = PricingCatalog::Default();
  auto c8 = catalog.Find("c8").value();
  auto c32 = catalog.Find("c32").value();
  EXPECT_NEAR(c32.price_per_hour / c8.price_per_hour,
              static_cast<double>(c32.vcpus) / c8.vcpus, 1e-9);
}

TEST(BillingTest, ChargesMachineTime) {
  BillingMeter meter;
  UsageRecord rec;
  rec.label = "query:q1";
  rec.duration = 100.0;
  rec.node_count = 4;
  rec.price_per_node_second = 0.01;
  meter.Charge(rec);
  EXPECT_DOUBLE_EQ(meter.total(), 4.0);
  EXPECT_DOUBLE_EQ(meter.total_machine_seconds(), 400.0);
}

TEST(BillingTest, MinimumBillingIncrement) {
  BillingMeter meter(/*min_billing_increment=*/60.0);
  UsageRecord rec;
  rec.label = "query:q1";
  rec.duration = 1.0;  // rounded up to 60
  rec.node_count = 1;
  rec.price_per_node_second = 0.01;
  meter.Charge(rec);
  EXPECT_DOUBLE_EQ(meter.total(), 0.6);
}

TEST(BillingTest, PrefixAndBreakdown) {
  BillingMeter meter;
  UsageRecord rec;
  rec.duration = 10.0;
  rec.node_count = 1;
  rec.price_per_node_second = 0.1;
  rec.label = "query:q1";
  meter.Charge(rec);
  rec.label = "tuning:mv";
  meter.Charge(rec);
  meter.ChargeFlat("storage", 0.5);
  EXPECT_DOUBLE_EQ(meter.TotalForPrefix("query:"), 1.0);
  EXPECT_DOUBLE_EQ(meter.TotalForPrefix("tuning:"), 1.0);
  EXPECT_DOUBLE_EQ(meter.total(), 2.5);
  auto breakdown = meter.Breakdown();
  EXPECT_DOUBLE_EQ(breakdown["storage"], 0.5);
  EXPECT_DOUBLE_EQ(breakdown["query:q1"], 1.0);
}

TEST(ObjectStoreTest, PutSizeDelete) {
  PricingCatalog pricing = PricingCatalog::Default();
  SimulatedObjectStore store(&pricing);
  store.Put("t/part-0", 2.0 * kGiB);
  ASSERT_TRUE(store.Exists("t/part-0"));
  EXPECT_DOUBLE_EQ(store.Size("t/part-0").value(), 2.0 * kGiB);
  EXPECT_DOUBLE_EQ(store.total_bytes(), 2.0 * kGiB);
  store.Put("t/part-0", 1.0 * kGiB);  // replace shrinks accounting
  EXPECT_DOUBLE_EQ(store.total_bytes(), 1.0 * kGiB);
  store.Delete("t/part-0");
  EXPECT_FALSE(store.Exists("t/part-0"));
  EXPECT_DOUBLE_EQ(store.total_bytes(), 0.0);
  EXPECT_TRUE(store.Size("t/part-0").status().IsNotFound());
}

TEST(ObjectStoreTest, StorageRentScalesWithTimeAndBytes) {
  PricingCatalog pricing = PricingCatalog::Default();
  SimulatedObjectStore store(&pricing);
  store.Put("t", 10.0 * kGiB);
  Dollars one_month = store.StorageRent(30.0 * kSecondsPerDay);
  EXPECT_NEAR(one_month, 10.0 * pricing.storage_per_gib_month, 1e-9);
  EXPECT_NEAR(store.StorageRent(15.0 * kSecondsPerDay), one_month / 2, 1e-9);
}

TEST(ObjectStoreTest, ScanTimeScalesInverselyWithNodes) {
  PricingCatalog pricing = PricingCatalog::Default();
  SimulatedObjectStore store(&pricing);
  const auto& node = pricing.default_node();
  Seconds t1 = store.ScanTime(100.0 * kGiB, node, 1);
  Seconds t10 = store.ScanTime(100.0 * kGiB, node, 10);
  EXPECT_NEAR(t1 / t10, 10.0, 1e-9);
}

TEST(ClusterTest, AcquireReleaseBillsWholeInterval) {
  CloudEnv env;
  auto cluster = env.clusters()->Acquire(4, /*now=*/0.0, "query:q1");
  ASSERT_TRUE(cluster.ok());
  EXPECT_EQ(env.clusters()->nodes_in_use(), 4);
  // Warm acquisition: sub-second.
  EXPECT_LE(env.clusters()->last_acquire_latency(), 1.0);
  Seconds end = cluster->acquired_at + 100.0;
  ASSERT_TRUE(env.clusters()->Release(&cluster.value(), end).ok());
  EXPECT_EQ(env.clusters()->nodes_in_use(), 0);
  const double expected =
      100.0 * 4 * env.pricing().default_node().price_per_second();
  EXPECT_NEAR(env.billing()->total(), expected, 1e-9);
}

TEST(ClusterTest, AcquireZeroNodesRejected) {
  CloudEnv env;
  EXPECT_TRUE(env.clusters()->Acquire(0, 0.0, "x").status().IsInvalidArgument());
}

TEST(ClusterTest, ColdAcquireBeyondWarmPool) {
  ClusterManager::Options opts;
  opts.warm_pool_size = 8;
  CloudEnv env(opts);
  auto c = env.clusters()->Acquire(64, 0.0, "big");
  ASSERT_TRUE(c.ok());
  EXPECT_GE(env.clusters()->last_acquire_latency(),
            env.clusters()->options().cold_acquire_latency);
}

TEST(ClusterTest, ResizeUpChargesOldSizeUntilEffective) {
  CloudEnv env;
  auto cluster = env.clusters()->Acquire(2, 0.0, "query:q1").value();
  Seconds t0 = cluster.acquired_at;
  auto ev = env.clusters()->Resize(&cluster, 8, t0 + 50.0);
  ASSERT_TRUE(ev.ok());
  EXPECT_EQ(ev->from_nodes, 2);
  EXPECT_EQ(ev->to_nodes, 8);
  EXPECT_GT(ev->latency, 0.0);
  EXPECT_EQ(env.clusters()->nodes_in_use(), 8);
  ASSERT_TRUE(env.clusters()->Release(&cluster, cluster.acquired_at + 50.0).ok());
  // 2 nodes for ~50s+latency, then 8 nodes for 50s.
  const double pps = env.pricing().default_node().price_per_second();
  EXPECT_NEAR(env.billing()->total(),
              (50.0 + ev->latency) * 2 * pps + 50.0 * 8 * pps, 1e-6);
}

TEST(ClusterTest, ResizeDownReturnsNodesAfterCooldown) {
  CloudEnv env;
  auto cluster = env.clusters()->Acquire(8, 0.0, "q").value();
  auto ev = env.clusters()->Resize(&cluster, 2, 100.0);
  ASSERT_TRUE(ev.ok());
  EXPECT_EQ(env.clusters()->nodes_in_use(), 2);
  ASSERT_TRUE(env.clusters()->Release(&cluster, 200.0).ok());
}

TEST(ClusterTest, DoubleReleaseRejected) {
  CloudEnv env;
  auto cluster = env.clusters()->Acquire(2, 0.0, "q").value();
  ASSERT_TRUE(env.clusters()->Release(&cluster, 10.0).ok());
  EXPECT_TRUE(env.clusters()->Release(&cluster, 20.0).IsInvalidArgument());
}

// The paper's central elasticity identity: N machines for T/N seconds cost the
// same as 1 machine for T seconds.
TEST(ClusterTest, PerfectElasticityCostIdentity) {
  const double pps = PricingCatalog::Default().default_node().price_per_second();
  for (int n : {1, 10, 100}) {
    CloudEnv env;
    auto cluster = env.clusters()->Acquire(n, 0.0, "q").value();
    Seconds run = 6000.0 / n;
    ASSERT_TRUE(
        env.clusters()->Release(&cluster, cluster.acquired_at + run).ok());
    EXPECT_NEAR(env.billing()->total(), 6000.0 * pps, 1e-9) << "n=" << n;
  }
}

}  // namespace
}  // namespace costdb
