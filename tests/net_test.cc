// Wire-format and transport tests: round-trip fidelity across every
// logical type (NULLs included), rejection of corrupted/truncated/forged
// frames, the EINTR/short-op retry loops with injected syscalls, and the
// socket transport's end-to-end chunk movement (including frames larger
// than a socketpair's kernel buffer, which force the interleaved pump).

#include <cerrno>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "chunk_testing.h"
#include "net/transport.h"
#include "net/wire.h"

#include <unistd.h>

namespace costdb {
namespace {

DataChunk AllTypesChunk() {
  DataChunk chunk({LogicalType::kInt64, LogicalType::kDouble,
                   LogicalType::kVarchar, LogicalType::kBool,
                   LogicalType::kDate});
  chunk.AppendRow({Value(int64_t{42}), Value(3.5), Value(std::string("abc")),
                   Value(int64_t{1}), Value(int64_t{19000})});
  chunk.AppendRow({Value(int64_t{-7}), Value(-0.25), Value(std::string("")),
                   Value(int64_t{0}), Value(int64_t{0})});
  chunk.AppendRow({Value(), Value(), Value(), Value(), Value()});  // all NULL
  chunk.AppendRow({Value(int64_t{1} << 40), Value(1e300),
                   Value(std::string(300, 'x')), Value(int64_t{1}),
                   Value(int64_t{-365})});
  return chunk;
}

TEST(WireFormat, RoundTripsAllTypesAndNulls) {
  DataChunk chunk = AllTypesChunk();
  std::string frame;
  wire::EncodeChunk(chunk, &frame);
  auto decoded = wire::DecodeChunk(frame);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  std::string why;
  EXPECT_TRUE(ChunksBitIdentical(chunk, *decoded, &why)) << why;
  // The NULL mask survives column by column, not just the row encoding.
  for (size_t c = 0; c < chunk.num_columns(); ++c) {
    ASSERT_EQ(decoded->column(c).type(), chunk.column(c).type());
    for (size_t r = 0; r < chunk.num_rows(); ++r) {
      EXPECT_EQ(decoded->column(c).IsNull(r), chunk.column(c).IsNull(r))
          << "col " << c << " row " << r;
    }
  }
}

TEST(WireFormat, RoundTripsEmptyChunks) {
  // Zero rows, five columns.
  DataChunk empty_rows({LogicalType::kInt64, LogicalType::kDouble,
                        LogicalType::kVarchar, LogicalType::kBool,
                        LogicalType::kDate});
  std::string frame;
  wire::EncodeChunk(empty_rows, &frame);
  auto decoded = wire::DecodeChunk(frame);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->num_columns(), 5u);
  EXPECT_EQ(decoded->num_rows(), 0u);
  ASSERT_EQ(decoded->Types(), empty_rows.Types());

  // Zero columns entirely.
  DataChunk empty;
  frame.clear();
  wire::EncodeChunk(empty, &frame);
  auto decoded2 = wire::DecodeChunk(frame);
  ASSERT_TRUE(decoded2.ok()) << decoded2.status().ToString();
  EXPECT_EQ(decoded2->num_columns(), 0u);
}

TEST(WireFormat, RejectsEveryTruncation) {
  std::string frame;
  wire::EncodeChunk(AllTypesChunk(), &frame);
  for (size_t len = 0; len < frame.size(); ++len) {
    auto decoded = wire::DecodeChunk(frame.data(), len);
    EXPECT_FALSE(decoded.ok()) << "accepted a frame truncated to " << len
                               << " of " << frame.size() << " bytes";
  }
  // Trailing garbage after a valid frame must also be rejected — a frame
  // is a complete unit, not a prefix.
  std::string padded = frame + "zz";
  EXPECT_FALSE(wire::DecodeChunk(padded).ok());
}

TEST(WireFormat, RejectsEverySingleByteCorruption) {
  // Every byte of the frame is under a checksum or is a structural
  // invariant (magic, version, counts), so no single-byte flip may decode.
  DataChunk chunk({LogicalType::kInt64, LogicalType::kVarchar});
  chunk.AppendRow({Value(int64_t{1}), Value(std::string("hello"))});
  chunk.AppendRow({Value(), Value(std::string("world"))});
  std::string frame;
  wire::EncodeChunk(chunk, &frame);
  for (size_t i = 0; i < frame.size(); ++i) {
    std::string bad = frame;
    bad[i] = static_cast<char>(bad[i] ^ 0x5a);
    auto decoded = wire::DecodeChunk(bad);
    EXPECT_FALSE(decoded.ok()) << "accepted a flip at byte " << i;
    if (!decoded.ok()) {
      EXPECT_TRUE(decoded.status().IsInvalidArgument())
          << decoded.status().ToString();
    }
  }
}

TEST(WireFormat, RejectsBadMagicAndVersion) {
  std::string frame;
  wire::EncodeChunk(AllTypesChunk(), &frame);
  // Leading magic.
  std::string bad = frame;
  bad[0] = 'X';
  EXPECT_FALSE(wire::DecodeChunk(bad).ok());
  // Trailing magic.
  bad = frame;
  bad[bad.size() - 1] = static_cast<char>(bad[bad.size() - 1] ^ 0xff);
  EXPECT_FALSE(wire::DecodeChunk(bad).ok());
  // Unknown version (byte 8 is the low byte of the u32 version field).
  bad = frame;
  bad[8] = 2;
  EXPECT_FALSE(wire::DecodeChunk(bad).ok());
  EXPECT_FALSE(wire::DecodeChunk(nullptr, 0).ok());
}

TEST(TransportIo, ReadFullRetriesEintrAndShortReads) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  size_t pos = 0;
  int calls = 0;
  // One byte per successful call, an EINTR failure between each: the loop
  // must retry interrupts and accumulate short reads until `n` bytes.
  ReadFn flaky = [&](int, void* buf, size_t) -> long {
    ++calls;
    if (calls % 2 == 1) {
      errno = EINTR;
      return -1;
    }
    if (pos >= data.size()) return 0;
    *static_cast<char*>(buf) = data[pos++];
    return 1;
  };
  std::string out(data.size(), '\0');
  Status s = ReadFull(-1, out.data(), out.size(), flaky);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(out, data);
  EXPECT_GE(calls, static_cast<int>(2 * data.size()));
}

TEST(TransportIo, ReadFullReportsEofMidFrame) {
  ReadFn eof = [](int, void*, size_t) -> long { return 0; };
  char buf[16];
  Status s = ReadFull(-1, buf, sizeof(buf), eof);
  EXPECT_FALSE(s.ok());
}

TEST(TransportIo, WriteFullRetriesEintrAndShortWrites) {
  const std::string data(4096, 'w');
  std::string sink;
  int calls = 0;
  WriteFn flaky = [&](int, const void* buf, size_t n) -> long {
    ++calls;
    if (calls % 3 == 0) {
      errno = EINTR;
      return -1;
    }
    // Short writes: at most 7 bytes per call.
    const size_t take = n < 7 ? n : 7;
    sink.append(static_cast<const char*>(buf), take);
    return static_cast<long>(take);
  };
  Status s = WriteFull(-1, data.data(), data.size(), flaky);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(sink, data);
}

TEST(TransportIo, FullReadWritePairOverRealPipe) {
  int fds[2];
  ASSERT_TRUE(MakeSocketPair(fds).ok());
  const std::string msg = "frame body";
  ASSERT_TRUE(WriteFull(fds[0], msg.data(), msg.size()).ok());
  std::string got(msg.size(), '\0');
  ASSERT_TRUE(ReadFull(fds[1], got.data(), got.size()).ok());
  EXPECT_EQ(got, msg);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(Transport, InProcessPassesChunksThroughUnserialized) {
  auto transport = MakeTransport(TransportKind::kInProcess);
  ASSERT_EQ(transport->kind(), TransportKind::kInProcess);
  DataChunk chunk = AllTypesChunk();
  DataChunk expect = chunk;
  auto sent = transport->Send(0, 1, std::move(chunk));
  ASSERT_TRUE(sent.ok()) << sent.status().ToString();
  std::string why;
  EXPECT_TRUE(ChunksBitIdentical(expect, *sent, &why)) << why;
  EXPECT_EQ(transport->stats().transfers, 1u);
  EXPECT_EQ(transport->stats().wire_bytes, 0.0);
  EXPECT_EQ(transport->stats().socket_bytes, 0.0);
}

TEST(Transport, SocketRoundTripsAndCountsBytes) {
  auto transport = MakeTransport(TransportKind::kSocket);
  ASSERT_EQ(transport->kind(), TransportKind::kSocket);
  DataChunk chunk = AllTypesChunk();
  DataChunk expect = chunk;
  std::string frame;
  wire::EncodeChunk(expect, &frame);
  auto sent = transport->Send(0, 1, std::move(chunk));
  ASSERT_TRUE(sent.ok()) << sent.status().ToString();
  std::string why;
  EXPECT_TRUE(ChunksBitIdentical(expect, *sent, &why)) << why;
  const TransportStats& stats = transport->stats();
  EXPECT_EQ(stats.transfers, 1u);
  // Wire bytes are the frame bodies; socket bytes add the 8-byte length
  // prefix per transfer. This is the accounting bench_e18 gates.
  EXPECT_EQ(stats.wire_bytes, static_cast<double>(frame.size()));
  EXPECT_EQ(stats.socket_bytes, stats.wire_bytes + 8.0);
  EXPECT_GE(stats.serialize_seconds, 0.0);
  EXPECT_GE(stats.transfer_seconds, 0.0);
  transport->ResetStats();
  EXPECT_EQ(transport->stats().transfers, 0u);
}

TEST(Transport, SocketMovesFramesLargerThanKernelBuffers) {
  // ~1.6 MiB of payload — far beyond a socketpair's default buffer, so a
  // naive write-then-read deadlocks; the pump must interleave both ends.
  DataChunk chunk({LogicalType::kInt64, LogicalType::kDouble});
  for (int64_t i = 0; i < 100'000; ++i) {
    chunk.AppendRow({Value(i), Value(static_cast<double>(i) * 0.5)});
  }
  DataChunk expect = chunk;
  auto transport = MakeTransport(TransportKind::kSocket);
  auto sent = transport->Send(1, 0, std::move(chunk));
  ASSERT_TRUE(sent.ok()) << sent.status().ToString();
  std::string why;
  EXPECT_TRUE(ChunksBitIdentical(expect, *sent, &why)) << why;
  EXPECT_GT(transport->stats().wire_bytes, 1.5 * 1024 * 1024);
}

}  // namespace
}  // namespace costdb
