#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>

#include "exec/engine.h"
#include "optimizer/optimizer.h"
#include "service/session.h"
#include "workload/ssb.h"

namespace costdb {
namespace {

DatabaseOptions SmallDbOptions() {
  DatabaseOptions opts;
  opts.exec_threads = 4;
  opts.batch_threads = 4;
  return opts;
}

std::unique_ptr<Database> MakeSsbDatabase(
    DatabaseOptions opts = SmallDbOptions()) {
  auto db = std::make_unique<Database>(opts);
  SsbOptions data;
  data.scale = 0.01;
  data.row_group_size = 256;
  LoadSsb(db->meta(), data);
  return db;
}

std::string Render(const QueryResult& r) { return r.ToString(1 << 20); }

/// Render with rows sorted, for comparisons across different (but
/// equivalent) plan shapes whose output order may legitimately differ.
std::string RenderSorted(const QueryResult& r) {
  std::string rendered = Render(r);
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < rendered.size()) {
    size_t end = rendered.find('\n', start);
    if (end == std::string::npos) end = rendered.size();
    lines.push_back(rendered.substr(start, end - start));
    start = end + 1;
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const auto& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

// ---------------------------------------------------------------- facade

TEST(DatabaseTest, ExecuteSqlMatchesDirectLocalEngineRun) {
  auto db = MakeSsbDatabase();
  // The supported client entry: a Session over the shared facade.
  Session session(db.get());
  for (const char* id : {"Q1", "Q3", "Q7"}) {
    const std::string sql = FindQuery(id).sql;
    auto via_facade = session.ExecuteSql(sql, UserConstraint::Sla(60.0));
    ASSERT_TRUE(via_facade.ok()) << id << ": "
                                 << via_facade.status().ToString();

    // The historical hand-wired path: optimizer front door + engine.
    Optimizer direct_opt(db->meta());
    auto plan = direct_opt.OptimizeSql(sql);
    ASSERT_TRUE(plan.ok()) << id;
    LocalEngine engine(4);
    auto direct = engine.Execute(plan->get());
    ASSERT_TRUE(direct.ok()) << id;

    EXPECT_EQ(via_facade->result.chunk.num_rows(), direct->chunk.num_rows())
        << id;
    // Sorted: the facade may pick a bushier join shape whose (equivalent)
    // output order differs for queries without a total ORDER BY.
    EXPECT_EQ(RenderSorted(via_facade->result), RenderSorted(*direct)) << id;
  }
}

TEST(DatabaseTest, ExecuteReportsPlanAndTimings) {
  auto db = MakeSsbDatabase();
  Session session(db.get());
  auto run = session.ExecuteSql(FindQuery("Q3").sql,
                                UserConstraint::Sla(60.0));
  ASSERT_TRUE(run.ok());
  ASSERT_NE(run->plan, nullptr);
  EXPECT_FALSE(run->plan->pipelines.pipelines.empty());
  EXPECT_EQ(run->timings.size(), run->plan->pipelines.pipelines.size());
  EXPECT_GT(run->plan->estimate.cost, 0.0);
}

// ------------------------------------------------------- calibration loop

TEST(DatabaseTest, CalibrationLoopShrinksEstimatorError) {
  auto db = MakeSsbDatabase();
  Session session(db.get());
  const std::string sql = FindQuery("Q7").sql;
  const UserConstraint sla = UserConstraint::Sla(60.0);

  auto warmup = session.ExecuteSql(sql, sla);
  ASSERT_TRUE(warmup.ok());
  ASSERT_GT(warmup->calibration.pipelines_observed, 0);
  // The update itself must tighten the fit of the observed run...
  EXPECT_LT(warmup->calibration.q_error_after,
            warmup->calibration.q_error_before);

  // ...and the *next* run of the same query must start from a smaller
  // estimate-vs-reality gap than the warm-up did.
  auto second = session.ExecuteSql(sql, sla);
  ASSERT_TRUE(second.ok());
  EXPECT_LT(second->calibration.q_error_before,
            warmup->calibration.q_error_before);
  EXPECT_GE(db->calibration().rounds(), 2);
}

TEST(DatabaseTest, CalibrationConvergesAndCacheStartsHitting) {
  auto db = MakeSsbDatabase();
  Session session(db.get());
  const std::string sql = FindQuery("Q1").sql;
  const UserConstraint sla = UserConstraint::Sla(60.0);
  // Repeated runs converge: once per-round movement falls inside the
  // recalibration threshold, cached plans stop being invalidated.
  bool hit = false;
  for (int i = 0; i < 12 && !hit; ++i) {
    auto run = session.ExecuteSql(sql, sla);
    ASSERT_TRUE(run.ok());
    hit = run->plan_cache_hit;
  }
  EXPECT_TRUE(hit) << "calibration never settled enough for a cache hit";
}

TEST(DatabaseTest, CalibrationDisabledKeepsHardwareFixed) {
  DatabaseOptions opts = SmallDbOptions();
  opts.enable_calibration = false;
  auto db = MakeSsbDatabase(opts);
  Session session(db.get());
  const double scan_before = db->hardware()->scan_gibps_per_node;
  auto run = session.ExecuteSql(FindQuery("Q1").sql,
                                UserConstraint::Sla(60.0));
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(db->hardware()->scan_gibps_per_node, scan_before);
  EXPECT_EQ(db->calibration().rounds(), 0);
}

// ------------------------------------------------------------ plan cache

TEST(DatabaseTest, PlanCacheHitsOnRepeatedSqlWhenCalibrationOff) {
  DatabaseOptions opts = SmallDbOptions();
  opts.enable_calibration = false;
  auto db = MakeSsbDatabase(opts);
  Session session(db.get());
  const std::string sql = FindQuery("Q3").sql;
  auto first = session.ExecuteSql(sql, UserConstraint::Sla(60.0));
  auto second = session.ExecuteSql(sql, UserConstraint::Sla(60.0));
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(first->plan_cache_hit);
  EXPECT_TRUE(second->plan_cache_hit);
  // Different constraint -> different cache slot.
  auto budget = session.ExecuteSql(sql, UserConstraint::Budget(1.0));
  ASSERT_TRUE(budget.ok());
  EXPECT_FALSE(budget->plan_cache_hit);
  auto stats = db->plan_cache_stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.entries, 2u);
}

// ------------------------------------------------------- concurrent batch

TEST(DatabaseTest, SubmitBatchOfEightIsDeterministic) {
  std::vector<QueryRequest> batch;
  for (const char* id : {"Q1", "Q3", "Q5", "Q7", "Q1", "Q3", "Q10", "Q6"}) {
    batch.push_back({FindQuery(id).sql, UserConstraint::Sla(60.0)});
  }

  auto run_batch = [&batch]() {
    auto db = MakeSsbDatabase();
    auto results = db->SubmitBatch(batch);
    std::vector<std::string> rendered;
    for (auto& r : results) {
      EXPECT_TRUE(r.ok()) << r.status().ToString();
      rendered.push_back(r.ok() ? Render(r->result) : "<error>");
    }
    return rendered;
  };

  auto first = run_batch();
  auto second = run_batch();
  ASSERT_EQ(first.size(), batch.size());
  EXPECT_EQ(first, second);

  // And identical to serial execution. Calibration stays off here so the
  // serial path plans against the same initial calibration the batch
  // planner saw (a batch plans everything up front, before any feedback).
  DatabaseOptions serial_opts = SmallDbOptions();
  serial_opts.enable_calibration = false;
  auto db = MakeSsbDatabase(serial_opts);
  Session session(db.get());
  for (size_t i = 0; i < batch.size(); ++i) {
    auto serial = session.ExecuteSql(batch[i].sql, batch[i].constraint);
    ASSERT_TRUE(serial.ok());
    EXPECT_EQ(Render(serial->result), first[i]) << "query " << i;
  }
}

TEST(DatabaseTest, SubmitBatchReportsPerQueryErrors) {
  auto db = MakeSsbDatabase();
  std::vector<QueryRequest> batch = {
      {FindQuery("Q1").sql, UserConstraint::Sla(60.0)},
      {"SELECT nope FROM nowhere", UserConstraint::Sla(60.0)},
  };
  auto results = db->SubmitBatch(batch);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[0].ok());
  EXPECT_FALSE(results[1].ok());
}

// ------------------------------------------------- pass pipeline plumbing

TEST(QueryServiceTest, DefaultPassOrder) {
  auto db = MakeSsbDatabase();
  EXPECT_EQ(db->query_service()->PassNames(),
            (std::vector<std::string>{"bind", "dag_plan", "bushy_rewrite",
                                      "physical_plan", "fuse_kernels",
                                      "dop_plan"}));
}

TEST(QueryServiceTest, FusionDecisionFollowsCalibratedFusedTerms) {
  // The fuse_kernels pass prices FusedFilterChainTime against
  // InterpretedFilterChainTime with the facade's live calibration, so the
  // same query must flip from fused to interpreted when the calibrated
  // fused terms say this hardware runs fused kernels terribly.
  const std::string sql =
      "SELECT lo_revenue FROM lineorder WHERE lo_orderkey < 600 "
      "AND lo_discount >= 1 AND lo_discount <= 3 AND lo_quantity < 25";
  struct FindScan {
    static const PhysicalPlan* In(const PhysicalPlan* p) {
      if (p == nullptr) return nullptr;
      if (p->kind == PhysicalPlan::Kind::kTableScan) return p;
      for (const auto& c : p->children) {
        if (const PhysicalPlan* f = In(c.get())) return f;
      }
      return nullptr;
    }
  };

  auto db = MakeSsbDatabase();
  auto planned = db->PlanSql(sql, UserConstraint());
  ASSERT_TRUE(planned.ok()) << planned.status().ToString();
  const PhysicalPlan* scan = FindScan::In(planned->plan.get());
  ASSERT_NE(scan, nullptr);
  EXPECT_TRUE(scan->fuse_scan_filter)
      << "seeded calibration must fuse a 4-conjunct pushed chain";

  // And the annotation is honored end to end: the facade's engine reports
  // morsels actually executed through the fused tier.
  Session session(db.get());
  auto run = session.ExecuteSql(sql, UserConstraint::Sla(60.0));
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_GT(run->fused.fused_filter_morsels, 0u);

  auto slow_fused = MakeSsbDatabase();
  slow_fused->hardware()->fused_filter_rows_per_sec = 1e3;
  slow_fused->hardware()->fused_dispatch_seconds = 1.0;
  auto replanned = slow_fused->PlanSql(sql, UserConstraint());
  ASSERT_TRUE(replanned.ok()) << replanned.status().ToString();
  const PhysicalPlan* slow_scan = FindScan::In(replanned->plan.get());
  ASSERT_NE(slow_scan, nullptr);
  EXPECT_FALSE(slow_scan->fuse_scan_filter)
      << "degraded fused calibration must fall back to the per-kernel path";
}

TEST(QueryServiceTest, RemovingBushyRewriteStillPlans) {
  auto db = MakeSsbDatabase();
  EXPECT_TRUE(db->query_service()->RemovePass("bushy_rewrite"));
  auto planned =
      db->query_service()->PlanSql(FindQuery("Q11").sql,
                                   UserConstraint::Sla(60.0));
  ASSERT_TRUE(planned.ok());
  EXPECT_EQ(planned->bushiness, 0);
}

// Regression (TSAN): Database::calibration_version() used to read the
// counter without cache_mu_, racing Calibrate's increment (which runs
// under the lock after every query when calibration is on). Sessions poll
// the version to decide plan-cache freshness, so the unguarded read was
// on the hot path. Monotonicity is asserted too: a torn or stale-forever
// read shows up as a decreasing or frozen sequence.
TEST(DatabaseTest, CalibrationVersionReadRacesCalibrate) {
  auto db = MakeSsbDatabase();
  std::atomic<bool> done{false};
  std::atomic<bool> monotonic{true};
  std::thread poller([&] {
    int last = db->calibration_version();
    while (!done.load(std::memory_order_relaxed)) {
      int v = db->calibration_version();
      if (v < last) monotonic.store(false);
      last = v;
    }
  });
  Session session(db.get());
  const UserConstraint sla = UserConstraint::Sla(60.0);
  for (int i = 0; i < 4; ++i) {
    auto run = session.ExecuteSql(FindQuery("Q1").sql, sla);
    ASSERT_TRUE(run.ok());
  }
  done.store(true);
  poller.join();
  EXPECT_TRUE(monotonic.load());
  EXPECT_GE(db->calibration_version(), 1);
}

TEST(QueryServiceTest, SimulationBackendBillsTheQuery) {
  auto db = MakeSsbDatabase();
  db->meta()->SetVirtualScale("lineorder", 1e4);
  auto sim = db->SimulateSql(FindQuery("Q3").sql, UserConstraint::Sla(120.0));
  ASSERT_TRUE(sim.ok());
  EXPECT_GT(sim->latency, 0.0);
  EXPECT_GT(sim->cost, 0.0);
}

}  // namespace
}  // namespace costdb
