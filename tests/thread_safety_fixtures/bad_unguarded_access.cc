// Thread-safety fixture: the seeded bug ci/check_thread_safety.sh proves
// the analysis catches. Reading a GUARDED_BY member without the lock must
// fail to compile under -Werror=thread-safety. Never linked into a target;
// compiled standalone (-fsyntax-only) by the fixture self-check only.
#include "common/annotated_mutex.h"

namespace costdb {

class UnguardedCounter {
 public:
  void Increment() {
    MutexLock lock(mu_);
    ++count_;
  }

  // BUG (intentional): unguarded read racing Increment. The analysis
  // reports: reading variable 'count_' requires holding mutex 'mu_'.
  int value() const { return count_; }

 private:
  mutable Mutex mu_;
  int count_ GUARDED_BY(mu_) = 0;
};

}  // namespace costdb
