// Thread-safety fixture: the corrected form of bad_unguarded_access.cc,
// exercising the full annotation vocabulary the service layer uses. Must
// compile clean under -Werror=thread-safety (the fixture self-check fails
// if it does not, catching a broken wrapper header or stage wiring).
#include "common/annotated_mutex.h"

namespace costdb {

class GuardedCounter {
 public:
  void Increment() EXCLUDES(mu_) {
    MutexLock lock(mu_);
    IncrementLocked();
  }

  int value() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return count_;
  }

  int reads() const EXCLUDES(rw_mu_) {
    ReaderMutexLock lock(rw_mu_);
    return reads_;
  }

  void ResetReads() EXCLUDES(rw_mu_) {
    WriterMutexLock lock(rw_mu_);
    reads_ = 0;
  }

 private:
  void IncrementLocked() REQUIRES(mu_) { ++count_; }

  mutable Mutex mu_;
  int count_ GUARDED_BY(mu_) = 0;
  mutable SharedMutex rw_mu_;
  int reads_ GUARDED_BY(rw_mu_) = 0;
};

}  // namespace costdb
