#pragma once

// Deterministic concurrency harness for admission-controller tests: a
// virtual clock injected through AdmissionOptions::clock so queue-wait /
// starvation assertions are schedule-exact (no sleeps, no wall-clock
// flakiness), and a slot blocker that saturates a controller's
// concurrency slots until released, so tests control exactly when the
// queue drains and in what state it is observed.

#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "service/admission.h"
#include "service/database.h"

namespace costdb {

/// A steady_clock the test advances by hand. Pass AsClock() into
/// AdmissionOptions::clock; Advance() then moves queue-wait time forward
/// exactly as far as the test says — pair with
/// AdmissionController::Poke() to make the controller re-evaluate.
class VirtualClock {
 public:
  VirtualClock() : epoch_(std::chrono::steady_clock::now()) {}

  void Advance(Seconds seconds) {
    nanos_.fetch_add(static_cast<int64_t>(seconds * 1e9));
  }

  std::chrono::steady_clock::time_point now() const {
    return epoch_ + std::chrono::nanoseconds(nanos_.load());
  }

  std::function<std::chrono::steady_clock::time_point()> AsClock() {
    return [this] { return now(); };
  }

 private:
  const std::chrono::steady_clock::time_point epoch_;
  std::atomic<int64_t> nanos_{0};
};

/// Occupies `slots` admission slots until released — deterministic
/// saturation for cancel/ordering/fairness tests. Blockers estimate as
/// free (est_latency 0) so cost ordering always admits them first, and
/// the constructor returns only once every blocker is running, so
/// everything submitted afterwards provably queues.
class SlotBlocker {
 public:
  explicit SlotBlocker(AdmissionController* controller, size_t slots = 1)
      : controller_(controller) {
    auto gate = std::shared_future<void>(release_.get_future());
    tickets_.reserve(slots);
    for (size_t i = 0; i < slots; ++i) {
      AdmissionController::Submission blocker;
      blocker.est_latency = 0.0;
      blocker.run = [gate] { gate.wait(); };
      tickets_.push_back(controller_->Submit(std::move(blocker)));
    }
    for (const auto& ticket : tickets_) {
      while (controller_->state(ticket) !=
             AdmissionController::Ticket::State::kRunning) {
        std::this_thread::yield();
      }
    }
  }

  explicit SlotBlocker(Database* db, size_t slots = 1)
      : SlotBlocker(db->admission(), slots) {}

  void Release() {
    if (!released_) release_.set_value();
    released_ = true;
  }

  ~SlotBlocker() { Release(); }

 private:
  AdmissionController* controller_;
  std::promise<void> release_;
  bool released_ = false;
  std::vector<AdmissionController::TicketPtr> tickets_;
};

/// Spin until the controller reports at least `n` queued tickets —
/// submissions from other threads are visibly enqueued before the test
/// asserts on queue state.
inline void WaitForQueued(AdmissionController* controller, size_t n) {
  while (controller->queued() < n) {
    std::this_thread::yield();
  }
}

}  // namespace costdb
