#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "catalog/catalog.h"
#include "common/rng.h"

namespace costdb {
namespace {

TEST(HistogramTest, UniformSelectivity) {
  std::vector<double> values;
  for (int i = 0; i < 10000; ++i) values.push_back(static_cast<double>(i));
  auto h = EquiDepthHistogram::Build(values, 64);
  EXPECT_NEAR(h.EstimateSelectivity(CompareOp::kLt, 2500.0), 0.25, 0.02);
  EXPECT_NEAR(h.EstimateSelectivity(CompareOp::kGe, 7500.0), 0.25, 0.02);
  EXPECT_NEAR(h.EstimateSelectivity(CompareOp::kLe, 9999.0), 1.0, 1e-6);
  EXPECT_NEAR(h.EstimateSelectivity(CompareOp::kGt, 9999.0), 0.0, 0.02);
  EXPECT_DOUBLE_EQ(h.EstimateSelectivity(CompareOp::kLt, -5.0), 0.0);
  EXPECT_DOUBLE_EQ(h.EstimateSelectivity(CompareOp::kGt, 20000.0), 0.0);
}

TEST(HistogramTest, SkewedDataStillAccurate) {
  Rng rng(5);
  std::vector<double> values;
  for (int i = 0; i < 20000; ++i) {
    values.push_back(static_cast<double>(rng.Zipf(1000, 1.2)));
  }
  double truth = 0;
  for (double v : values) truth += (v <= 10.0);
  truth /= values.size();
  auto h = EquiDepthHistogram::Build(values, 64);
  EXPECT_NEAR(h.EstimateSelectivity(CompareOp::kLe, 10.0), truth, 0.08);
}

TEST(HistogramTest, EmptyHistogramFallsBack) {
  auto h = EquiDepthHistogram::Build({}, 16);
  EXPECT_TRUE(h.empty());
  EXPECT_DOUBLE_EQ(h.EstimateSelectivity(CompareOp::kLt, 1.0), 0.5);
}

TEST(HllTest, EstimateWithinTypicalError) {
  HyperLogLog hll;
  const int64_t n = 100000;
  for (int64_t i = 0; i < n; ++i) hll.AddInt(i * 7919);
  EXPECT_NEAR(hll.Estimate(), static_cast<double>(n), 0.05 * n);
}

TEST(HllTest, DuplicatesDoNotInflate) {
  HyperLogLog hll;
  for (int64_t i = 0; i < 100000; ++i) hll.AddInt(i % 100);
  EXPECT_NEAR(hll.Estimate(), 100.0, 10.0);
}

TEST(HllTest, MergeEqualsUnion) {
  HyperLogLog a, b;
  for (int64_t i = 0; i < 5000; ++i) a.AddInt(i);
  for (int64_t i = 2500; i < 7500; ++i) b.AddInt(i);
  a.Merge(b);
  EXPECT_NEAR(a.Estimate(), 7500.0, 400.0);
}

TEST(HllTest, StringsAndDoubles) {
  HyperLogLog hll;
  for (int i = 0; i < 1000; ++i) hll.AddString("key" + std::to_string(i));
  for (int i = 0; i < 1000; ++i) hll.AddDouble(i * 0.5);
  EXPECT_NEAR(hll.Estimate(), 2000.0, 150.0);
}

std::shared_ptr<Table> MakeTable(const std::string& name, int64_t rows,
                                 int64_t ndv) {
  auto t = std::make_shared<Table>(
      name,
      std::vector<ColumnDef>{{"k", LogicalType::kInt64},
                             {"s", LogicalType::kVarchar}},
      1024);
  DataChunk chunk({LogicalType::kInt64, LogicalType::kVarchar});
  for (int64_t i = 0; i < rows; ++i) {
    chunk.AppendRow({Value(i % ndv), Value(std::string("val") +
                                           std::to_string(i % ndv))});
  }
  t->Append(chunk);
  return t;
}

TEST(TableStatsTest, AnalyzeComputesRowCountNdvMinMax) {
  auto t = MakeTable("t", 10000, 50);
  TableStats stats = TableStats::Analyze(*t);
  EXPECT_DOUBLE_EQ(stats.row_count, 10000.0);
  const ColumnStats* k = stats.Find("k");
  ASSERT_NE(k, nullptr);
  EXPECT_NEAR(k->ndv, 50.0, 5.0);
  EXPECT_EQ(k->min.AsInt(), 0);
  EXPECT_EQ(k->max.AsInt(), 49);
  EXPECT_TRUE(k->has_histogram);
  const ColumnStats* s = stats.Find("s");
  ASSERT_NE(s, nullptr);
  EXPECT_FALSE(s->has_histogram);
  EXPECT_GT(s->avg_width, 3.0);
  EXPECT_EQ(stats.Find("missing"), nullptr);
}

TEST(MetadataServiceTest, RegisterLookupDrop) {
  MetadataService meta;
  meta.RegisterTable(MakeTable("orders", 100, 10));
  ASSERT_TRUE(meta.HasTable("orders"));
  EXPECT_EQ(meta.GetTable("orders").value()->num_rows(), 100u);
  EXPECT_TRUE(meta.GetTable("nope").status().IsNotFound());
  ASSERT_TRUE(meta.DropTable("orders").ok());
  EXPECT_FALSE(meta.HasTable("orders"));
  EXPECT_TRUE(meta.DropTable("orders").IsNotFound());
}

TEST(MetadataServiceTest, StatsServedAfterAnalyze) {
  MetadataService meta;
  meta.RegisterTable(MakeTable("t", 5000, 100));
  EXPECT_EQ(meta.GetStats("t"), nullptr);  // not analyzed yet
  ASSERT_TRUE(meta.Analyze("t").ok());
  const TableStats* stats = meta.GetStats("t");
  ASSERT_NE(stats, nullptr);
  EXPECT_DOUBLE_EQ(stats->row_count, 5000.0);
}

TEST(MetadataServiceTest, StatsErrorFactorScalesServedRowCount) {
  MetadataService meta;
  meta.RegisterTable(MakeTable("t", 1000, 10));
  ASSERT_TRUE(meta.Analyze("t").ok());
  meta.SetStatsErrorFactor("t", 0.125);
  EXPECT_DOUBLE_EQ(meta.GetStats("t")->row_count, 125.0);
  meta.SetStatsErrorFactor("t", 8.0);
  EXPECT_DOUBLE_EQ(meta.GetStats("t")->row_count, 8000.0);
  EXPECT_DOUBLE_EQ(meta.stats_error_factor("t"), 8.0);
  EXPECT_DOUBLE_EQ(meta.stats_error_factor("other"), 1.0);
}

TEST(MetadataServiceTest, SyncToObjectStoreCreatesObjects) {
  MetadataService meta;
  meta.RegisterTable(MakeTable("t", 4096, 64));  // 4 row groups of 1024
  CloudEnv env;
  meta.SyncToObjectStore(&env);
  EXPECT_TRUE(env.object_store()->Exists("t/part-0"));
  EXPECT_TRUE(env.object_store()->Exists("t/part-3"));
  EXPECT_GT(env.object_store()->total_bytes(), 0.0);
}

// Regression (TSAN): SetStatsErrorFactor and SetVirtualScale used to
// mutate their maps and invalidate the served-stats cache WITHOUT taking
// stats_mu_, racing every concurrent GetStats/accessor (which do lock).
// The what-if planner flips these knobs while sessions plan, so the race
// was reachable in production paths, not just tests. Run catalog_test
// under the TSAN CI stage to prove the locked rewrite holds; values are
// also checked so a torn read that happens not to trap still fails.
TEST(MetadataServiceTest, StatsKnobsRaceServedStatsReads) {
  MetadataService meta;
  meta.RegisterTable(MakeTable("t", 1000, 10));
  ASSERT_TRUE(meta.Analyze("t").ok());

  constexpr int kFlips = 400;
  std::atomic<bool> done{false};
  std::atomic<int> bad_reads{0};

  std::thread error_writer([&] {
    for (int i = 0; i < kFlips; ++i) {
      meta.SetStatsErrorFactor("t", (i % 2) ? 2.0 : 0.5);
    }
  });
  std::thread scale_writer([&] {
    for (int i = 0; i < kFlips; ++i) {
      meta.SetVirtualScale("t", (i % 2) ? 4.0 : 1.0);
    }
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!done.load(std::memory_order_relaxed)) {
        // GetStats rebuilds the served copy from the knobs under the lock;
        // every knob value pair yields a row count from this closed set.
        const TableStats* stats = meta.GetStats("t");
        if (stats == nullptr) {
          bad_reads.fetch_add(1);
          continue;
        }
        double ef = meta.stats_error_factor("t");
        double vs = meta.virtual_scale("t");
        if ((ef != 2.0 && ef != 0.5 && ef != 1.0) ||
            (vs != 4.0 && vs != 1.0)) {
          bad_reads.fetch_add(1);
        }
      }
    });
  }
  error_writer.join();
  scale_writer.join();
  done.store(true);
  for (auto& t : readers) t.join();
  EXPECT_EQ(bad_reads.load(), 0);

  // Settled state serves the last-written factors exactly.
  meta.SetStatsErrorFactor("t", 1.0);
  meta.SetVirtualScale("t", 1.0);
  EXPECT_DOUBLE_EQ(meta.GetStats("t")->row_count, 1000.0);
}

TEST(MetadataServiceTest, MaterializedViewRegistry) {
  MetadataService meta;
  MaterializedViewInfo info;
  info.name = "mv1";
  info.join_edges = {"a.x=b.y"};
  meta.RegisterMaterializedView(info);
  ASSERT_EQ(meta.materialized_views().size(), 1u);
  EXPECT_EQ(meta.materialized_views()[0].name, "mv1");
}

}  // namespace
}  // namespace costdb
