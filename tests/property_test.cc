// Property-style sweeps over randomized inputs: invariants that must hold
// for any data, not just the fixtures used elsewhere.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "exec/engine.h"
#include "optimizer/bi_objective.h"
#include "optimizer/optimizer.h"
#include "workload/ssb.h"

namespace costdb {
namespace {

// ---------------------------------------------------------------------
// Zone maps never prune a row group that contains a matching row.
// ---------------------------------------------------------------------
class ZoneMapProperty : public ::testing::TestWithParam<int> {};

TEST_P(ZoneMapProperty, PruningIsSafe) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  ColumnVector col(LogicalType::kInt64);
  const int n = 200;
  for (int i = 0; i < n; ++i) {
    col.AppendInt(rng.UniformInt(-50, 50));
  }
  ZoneMapEntry zone = ZoneMapEntry::Build(col);
  for (CompareOp op : {CompareOp::kEq, CompareOp::kNe, CompareOp::kLt,
                       CompareOp::kLe, CompareOp::kGt, CompareOp::kGe}) {
    for (int64_t c = -60; c <= 60; c += 7) {
      bool any_match = false;
      for (size_t i = 0; i < col.size(); ++i) {
        int64_t v = col.GetInt(i);
        bool m = false;
        switch (op) {
          case CompareOp::kEq: m = v == c; break;
          case CompareOp::kNe: m = v != c; break;
          case CompareOp::kLt: m = v < c; break;
          case CompareOp::kLe: m = v <= c; break;
          case CompareOp::kGt: m = v > c; break;
          case CompareOp::kGe: m = v >= c; break;
        }
        if (m) {
          any_match = true;
          break;
        }
      }
      if (any_match) {
        EXPECT_TRUE(zone.MayMatch(op, Value(c)))
            << CompareOpName(op) << " " << c;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ZoneMapProperty, ::testing::Range(1, 8));

// ---------------------------------------------------------------------
// Histogram selectivity tracks the true fraction on random data.
// ---------------------------------------------------------------------
class HistogramProperty : public ::testing::TestWithParam<int> {};

TEST_P(HistogramProperty, SelectivityWithinTolerance) {
  Rng rng(100 + static_cast<uint64_t>(GetParam()));
  std::vector<double> values;
  for (int i = 0; i < 8000; ++i) values.push_back(rng.Normal(0.0, 25.0));
  auto h = EquiDepthHistogram::Build(values, 64);
  for (double c : {-30.0, -10.0, 0.0, 10.0, 30.0}) {
    double truth = 0.0;
    for (double v : values) truth += (v <= c);
    truth /= values.size();
    EXPECT_NEAR(h.EstimateSelectivity(CompareOp::kLe, c), truth, 0.05);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HistogramProperty, ::testing::Range(1, 6));

// ---------------------------------------------------------------------
// Engine determinism + SQL suite correctness invariants, parameterized
// over every benchmark query: 1-thread and 8-thread execution agree, and
// group-by outputs never exceed the grouping key's distinct count.
// ---------------------------------------------------------------------
class QuerySuiteProperty : public ::testing::TestWithParam<int> {
 protected:
  static MetadataService* Meta() {
    static MetadataService* meta = [] {
      auto* m = new MetadataService();
      SsbOptions opts;
      opts.scale = 0.004;
      LoadSsb(m, opts);
      return m;
    }();
    return meta;
  }
};

TEST_P(QuerySuiteProperty, ThreadCountInvariant) {
  const QueryTemplate q = SsbQueries()[static_cast<size_t>(GetParam())];
  Optimizer opt(Meta());
  auto plan = opt.OptimizeSql(q.sql);
  ASSERT_TRUE(plan.ok()) << q.id << ": " << plan.status().ToString();
  LocalEngine serial(1);
  LocalEngine parallel(8);
  auto r1 = serial.Execute(plan->get());
  auto r8 = parallel.Execute(plan->get());
  ASSERT_TRUE(r1.ok()) << q.id;
  ASSERT_TRUE(r8.ok()) << q.id;
  EXPECT_EQ(r1->chunk.ToString(-1), r8->chunk.ToString(-1)) << q.id;
}

INSTANTIATE_TEST_SUITE_P(AllQueries, QuerySuiteProperty,
                         ::testing::Range(0, 12));

// ---------------------------------------------------------------------
// DOP-planner monotonicity: loosening the SLA never increases the bill;
// raising the budget never increases latency.
// ---------------------------------------------------------------------
class PlannerMonotonicity : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override {
    SsbOptions opts;
    opts.scale = 0.004;
    LoadSsb(&meta_, opts);
    meta_.SetVirtualScale("lineorder", 1e5);
    meta_.SetVirtualScale("shipments", 1e5);
    node_ = PricingCatalog::Default().default_node();
    estimator_ = std::make_unique<CostEstimator>(&hw_, &node_);
  }

  MetadataService meta_;
  HardwareCalibration hw_;
  InstanceType node_;
  std::unique_ptr<CostEstimator> estimator_;
};

TEST_P(PlannerMonotonicity, LooserSlaNeverCostsMore) {
  BiObjectiveOptimizer opt(&meta_, estimator_.get());
  const std::string sql = FindQuery(GetParam()).sql;
  Dollars prev_cost = -1.0;
  for (Seconds sla : {2.0, 8.0, 32.0, 128.0}) {
    auto planned = opt.PlanSql(sql, UserConstraint::Sla(sla));
    ASSERT_TRUE(planned.ok());
    if (prev_cost >= 0.0 && planned->feasible) {
      EXPECT_LE(planned->estimate.cost, prev_cost * 1.01)
          << GetParam() << " sla=" << sla;
    }
    if (planned->feasible) prev_cost = planned->estimate.cost;
  }
}

TEST_P(PlannerMonotonicity, FrontierIsNonDominated) {
  Binder binder(&meta_);
  auto q = binder.BindSql(FindQuery(GetParam()).sql);
  ASSERT_TRUE(q.ok());
  Optimizer shaper(&meta_);
  auto plan = shaper.OptimizeQuery(*q);
  ASSERT_TRUE(plan.ok());
  PipelineGraph graph = BuildPipelines(plan->get());
  CardinalityEstimator cards(&meta_, &q->relations);
  VolumeMap volumes = ComputeVolumes(plan->get(), cards);
  DopPlannerOptions opts;
  opts.max_dop = 8;  // keep the enumeration quick
  DopPlanner planner(estimator_.get(), opts);
  auto frontier = planner.EnumeratePareto(graph, volumes, nullptr);
  for (size_t i = 0; i < frontier.size(); ++i) {
    for (size_t j = 0; j < frontier.size(); ++j) {
      if (i == j) continue;
      bool dominates = frontier[j].latency <= frontier[i].latency &&
                       frontier[j].cost <= frontier[i].cost &&
                       (frontier[j].latency < frontier[i].latency ||
                        frontier[j].cost < frontier[i].cost);
      EXPECT_FALSE(dominates) << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Queries, PlannerMonotonicity,
                         ::testing::Values("Q1", "Q3", "Q5", "Q7"));

// ---------------------------------------------------------------------
// Billing conservation in the cloud layer: for any acquire/resize/release
// sequence, total dollars equal the integral of node-count over time.
// ---------------------------------------------------------------------
class BillingProperty : public ::testing::TestWithParam<int> {};

TEST_P(BillingProperty, BillEqualsNodeSecondsIntegral) {
  Rng rng(900 + static_cast<uint64_t>(GetParam()));
  CloudEnv env;
  auto cluster = env.clusters()->Acquire(4, 0.0, "q").value();
  double node_seconds = 0.0;
  Seconds t = cluster.acquired_at;
  int nodes = 4;
  for (int step = 0; step < 6; ++step) {
    Seconds dt = rng.Uniform(1.0, 20.0);
    int next = static_cast<int>(rng.UniformInt(1, 12));
    auto ev = env.clusters()->Resize(&cluster, next, t + dt);
    ASSERT_TRUE(ev.ok());
    node_seconds += nodes * (dt + ev->latency);
    t = cluster.acquired_at;
    nodes = next;
  }
  Seconds dt = rng.Uniform(1.0, 10.0);
  ASSERT_TRUE(env.clusters()->Release(&cluster, t + dt).ok());
  node_seconds += nodes * dt;
  double pps = env.pricing().default_node().price_per_second();
  EXPECT_NEAR(env.billing()->total(), node_seconds * pps,
              env.billing()->total() * 1e-9);
  EXPECT_NEAR(env.billing()->total_machine_seconds(), node_seconds, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BillingProperty, ::testing::Range(1, 9));

}  // namespace
}  // namespace costdb
