// Property tests for the vectorized execution path: the selection-vector
// kernels must agree with the scalar reference interpreter on randomized
// chunks (including NULLs), zone-map pruning must never drop a qualifying
// row, and the engine's aggregation must stay deterministic across thread
// counts.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "cost/operator_models.h"
#include "exec/engine.h"
#include "exec/evaluator.h"
#include "exec/fused.h"
#include "optimizer/optimizer.h"
#include "storage/table.h"

namespace costdb {
namespace {

const std::vector<std::string> kSchema = {"a", "b", "x", "s"};
const char* kWords[] = {"alpha", "beta", "gamma", "delta", "", "alp", "be%ta"};

/// Random chunk over (a int64, b int64 small-domain, x double, s varchar),
/// optionally sprinkled with NULLs in every column.
DataChunk RandomChunk(Rng* rng, size_t rows, bool with_nulls) {
  DataChunk chunk({LogicalType::kInt64, LogicalType::kInt64,
                   LogicalType::kDouble, LogicalType::kVarchar});
  for (size_t r = 0; r < rows; ++r) {
    auto null_here = [&] { return with_nulls && rng->NextDouble() < 0.12; };
    std::vector<Value> row;
    row.push_back(null_here() ? Value::Null() : Value(rng->UniformInt(-50, 50)));
    row.push_back(null_here() ? Value::Null() : Value(rng->UniformInt(0, 5)));
    row.push_back(null_here() ? Value::Null() : Value(rng->Uniform(-10.0, 10.0)));
    row.push_back(null_here() ? Value::Null()
                              : Value(std::string(kWords[rng->UniformInt(0, 6)])));
    chunk.AppendRow(row);
  }
  return chunk;
}

ExprPtr IntCol(const char* name) {
  return Expr::MakeColumn(name, LogicalType::kInt64);
}

/// Random predicate tree over the schema: column-vs-constant and
/// column-vs-column comparisons, LIKE, arithmetic inside comparisons, and
/// AND/OR/NOT combiners — every shape the selection path dispatches on.
ExprPtr RandomPredicate(Rng* rng, int depth) {
  if (depth <= 0 || rng->NextDouble() < 0.4) {
    const CompareOp ops[] = {CompareOp::kEq, CompareOp::kNe, CompareOp::kLt,
                             CompareOp::kLe, CompareOp::kGt, CompareOp::kGe};
    CompareOp op = ops[rng->UniformInt(0, 5)];
    switch (rng->UniformInt(0, 5)) {
      case 0:  // int column vs int constant
        return Expr::MakeCompare(
            op, IntCol("a"),
            Expr::MakeConstant(Value(rng->UniformInt(-40, 40)),
                               LogicalType::kInt64));
      case 1:  // double column vs double constant
        return Expr::MakeCompare(
            op, Expr::MakeColumn("x", LogicalType::kDouble),
            Expr::MakeConstant(Value(rng->Uniform(-8.0, 8.0)),
                               LogicalType::kDouble));
      case 2:  // int column vs int column (b's domain overlaps a's)
        return Expr::MakeCompare(op, IntCol("a"), IntCol("b"));
      case 3:  // string column vs string constant
        return Expr::MakeCompare(
            op, Expr::MakeColumn("s", LogicalType::kVarchar),
            Expr::MakeConstant(Value(std::string(kWords[rng->UniformInt(0, 6)])),
                               LogicalType::kVarchar));
      case 4:  // LIKE
        return Expr::MakeLike(Expr::MakeColumn("s", LogicalType::kVarchar),
                              rng->NextDouble() < 0.5 ? "%a%" : "be_ta");
      default:  // arithmetic inside a comparison (mask fallback path)
        return Expr::MakeCompare(
            op, Expr::MakeArith('+', IntCol("a"), IntCol("b")),
            Expr::MakeConstant(Value(rng->UniformInt(-20, 20)),
                               LogicalType::kInt64));
    }
  }
  switch (rng->UniformInt(0, 2)) {
    case 0: {
      std::vector<ExprPtr> kids;
      int n = static_cast<int>(rng->UniformInt(2, 3));
      for (int i = 0; i < n; ++i) kids.push_back(RandomPredicate(rng, depth - 1));
      return Expr::MakeAnd(std::move(kids));
    }
    case 1: {
      std::vector<ExprPtr> kids;
      int n = static_cast<int>(rng->UniformInt(2, 3));
      for (int i = 0; i < n; ++i) kids.push_back(RandomPredicate(rng, depth - 1));
      return Expr::MakeOr(std::move(kids));
    }
    default:
      return Expr::MakeNot(RandomPredicate(rng, depth - 1));
  }
}

TEST(VectorizedParity, SelectionMatchesScalarReference) {
  Rng rng(7);
  Evaluator ev(&kSchema);
  for (int iter = 0; iter < 120; ++iter) {
    const bool with_nulls = iter % 2 == 1;
    DataChunk chunk = RandomChunk(&rng, 257, with_nulls);
    ExprPtr pred = RandomPredicate(&rng, 2);
    auto fast = ev.EvaluateSelection(*pred, chunk);
    auto slow = ev.EvaluateSelectionScalar(*pred, chunk);
    ASSERT_TRUE(fast.ok()) << pred->ToString();
    ASSERT_TRUE(slow.ok()) << pred->ToString();
    EXPECT_EQ(*fast, *slow) << "iter " << iter << " nulls=" << with_nulls
                            << " pred " << pred->ToString();
  }
}

TEST(VectorizedParity, ProjectionMatchesScalarReference) {
  Rng rng(11);
  Evaluator ev(&kSchema);
  for (int iter = 0; iter < 60; ++iter) {
    DataChunk chunk = RandomChunk(&rng, 97, /*with_nulls=*/true);
    const char ops[] = {'+', '-', '*', '/'};
    ExprPtr expr = Expr::MakeArith(
        ops[rng.UniformInt(0, 3)],
        rng.NextDouble() < 0.5 ? IntCol("a")
                               : Expr::MakeColumn("x", LogicalType::kDouble),
        rng.NextDouble() < 0.5
            ? IntCol("b")
            : Expr::MakeConstant(Value(rng.UniformInt(-3, 3)),
                                 LogicalType::kInt64));
    expr->type = LogicalType::kDouble;
    auto vec = ev.Evaluate(*expr, chunk);
    ASSERT_TRUE(vec.ok());
    for (size_t r = 0; r < chunk.num_rows(); ++r) {
      auto scalar = ev.EvaluateRow(*expr, chunk, r);
      ASSERT_TRUE(scalar.ok());
      EXPECT_EQ(vec->IsNull(r), scalar->is_null()) << "row " << r;
      if (!scalar->is_null()) {
        EXPECT_DOUBLE_EQ(vec->GetDouble(r), scalar->AsDouble()) << "row " << r;
      }
    }
  }
}

TEST(LikeEscape, EscapedWildcardsMatchLiterally) {
  // '!' escapes the following wildcard (or itself).
  EXPECT_TRUE(LikeMatch("50%", "50!%", '!'));
  EXPECT_FALSE(LikeMatch("50x", "50!%", '!'));
  EXPECT_TRUE(LikeMatch("a_b", "a!_b", '!'));
  EXPECT_FALSE(LikeMatch("axb", "a!_b", '!'));
  EXPECT_TRUE(LikeMatch("a!b", "a!!b", '!'));
  // Unescaped wildcards still work around escaped ones.
  EXPECT_TRUE(LikeMatch("price: 50% off", "%50!%%", '!'));
  EXPECT_FALSE(LikeMatch("price: 500 off", "%50!%%", '!'));
  // No escape char: '!' is an ordinary literal and % stays a wildcard.
  EXPECT_TRUE(LikeMatch("50x", "50%"));
  EXPECT_TRUE(LikeMatch("a!b", "a!b"));
  // The compiled form agrees with the one-shot helper.
  LikePattern compiled("%!%%", '!');
  EXPECT_TRUE(compiled.Match("100% sure"));
  EXPECT_FALSE(compiled.Match("100 percent"));
}

TEST(VectorizedParity, LikeEscapeMatchesScalarReference) {
  DataChunk chunk({LogicalType::kInt64, LogicalType::kInt64,
                   LogicalType::kDouble, LogicalType::kVarchar});
  const char* samples[] = {"50%",   "50x",  "a_b",   "axb", "a!b",
                           "100%",  "",     "%",     "_",   "!","50% off"};
  int64_t i = 0;
  for (const char* s : samples) {
    chunk.AppendRow({Value(i++), Value(int64_t{0}), Value(0.0),
                     Value(std::string(s))});
  }
  chunk.AppendRow({Value(i), Value(int64_t{0}), Value(0.0), Value::Null()});
  Evaluator ev(&kSchema);
  for (const char* pattern : {"50!%", "a!_b", "a!!b", "!%%", "%!%%", "!_"}) {
    ExprPtr pred = Expr::MakeLike(
        Expr::MakeColumn("s", LogicalType::kVarchar), pattern, '!');
    auto fast = ev.EvaluateSelection(*pred, chunk);
    auto slow = ev.EvaluateSelectionScalar(*pred, chunk);
    ASSERT_TRUE(fast.ok()) << pattern;
    ASSERT_TRUE(slow.ok()) << pattern;
    EXPECT_EQ(*fast, *slow) << pattern;
    // The mask path agrees too (NULL input row stays NULL).
    auto mask = ev.Evaluate(*pred, chunk);
    ASSERT_TRUE(mask.ok());
    EXPECT_TRUE(mask->IsNull(chunk.num_rows() - 1));
  }
}

TEST(HashKernel, NullKeysHashToOneTagNeverTheirPayload) {
  // Two NULL slots with different stale payloads must hash identically,
  // and a NULL must not hash like the genuine 0 its filler payload holds.
  ColumnVector with_filler(LogicalType::kInt64);
  with_filler.AppendInt(0);     // genuine 0
  with_filler.AppendNull();     // payload filler is also 0
  ColumnVector with_stale(LogicalType::kInt64);
  with_stale.AppendInt(42);
  with_stale.AppendInt(-7);
  with_stale.MutableValidity()[0] = 0;  // NULL with stale payload 42
  with_stale.MutableValidity()[1] = 0;  // NULL with stale payload -7

  std::vector<uint64_t> h1, h2;
  kernels::HashRows({with_filler}, {true}, 2, &h1);
  kernels::HashRows({with_stale}, {true}, 2, &h2);
  EXPECT_NE(h1[0], h1[1]) << "NULL hashed like a genuine 0";
  EXPECT_EQ(h2[0], h2[1]) << "NULL hash depends on stale payload";
  EXPECT_EQ(h1[1], h2[0]) << "NULL hash differs across vectors";

  // AnyKeyNull is the probe/build guard.
  EXPECT_FALSE(kernels::AnyKeyNull({with_filler}, 0));
  EXPECT_TRUE(kernels::AnyKeyNull({with_filler}, 1));
}

TEST(VectorizedParity, NullComparisonNeverSelects) {
  Evaluator ev(&kSchema);
  DataChunk chunk({LogicalType::kInt64, LogicalType::kInt64,
                   LogicalType::kDouble, LogicalType::kVarchar});
  chunk.AppendRow({Value(int64_t{5}), Value(int64_t{1}), Value(1.0),
                   Value(std::string("alpha"))});
  chunk.AppendRow({Value::Null(), Value(int64_t{1}), Value(1.0),
                   Value(std::string("alpha"))});
  chunk.AppendRow({Value(int64_t{-5}), Value(int64_t{1}), Value(1.0),
                   Value(std::string("alpha"))});
  // a > 0 keeps only row 0; NOT(a > 0) keeps only row 2 (NULL is neither).
  ExprPtr gt = Expr::MakeCompare(
      CompareOp::kGt, IntCol("a"),
      Expr::MakeConstant(Value(int64_t{0}), LogicalType::kInt64));
  auto sel = ev.EvaluateSelection(*gt, chunk);
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(*sel, (SelectionVector{0}));
  auto neg = ev.EvaluateSelection(*Expr::MakeNot(gt), chunk);
  ASSERT_TRUE(neg.ok());
  EXPECT_EQ(*neg, (SelectionVector{2}));
}

TEST(VectorizedParity, BareColumnPredicateUsesTypedTruthiness) {
  // A bare double column as predicate (reachable only through the direct
  // kernel API) must truthy-test the double payload, matching the scalar
  // oracle, instead of touching the int payload.
  Evaluator ev(&kSchema);
  DataChunk chunk({LogicalType::kInt64, LogicalType::kInt64,
                   LogicalType::kDouble, LogicalType::kVarchar});
  chunk.AppendRow({Value(int64_t{1}), Value(int64_t{0}), Value(0.0),
                   Value(std::string("w"))});
  chunk.AppendRow({Value(int64_t{1}), Value(int64_t{0}), Value(2.5),
                   Value(std::string("w"))});
  chunk.AppendRow({Value(int64_t{1}), Value(int64_t{0}), Value::Null(),
                   Value(std::string("w"))});
  ExprPtr pred = Expr::MakeColumn("x", LogicalType::kDouble);
  auto fast = ev.EvaluateSelection(*pred, chunk);
  auto slow = ev.EvaluateSelectionScalar(*pred, chunk);
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(slow.ok());
  EXPECT_EQ(*fast, (SelectionVector{1}));
  EXPECT_EQ(*fast, *slow);
}

TEST(VectorizedParity, LogicalOpsCoerceDoubleOperands) {
  // NOT / AND over a double operand must truthy-test the double payload
  // in both paths (regression: the mask path used to read the empty int
  // payload).
  Evaluator ev(&kSchema);
  DataChunk chunk({LogicalType::kInt64, LogicalType::kInt64,
                   LogicalType::kDouble, LogicalType::kVarchar});
  chunk.AppendRow({Value(int64_t{1}), Value(int64_t{0}), Value(0.0),
                   Value(std::string("w"))});
  chunk.AppendRow({Value(int64_t{1}), Value(int64_t{0}), Value(3.5),
                   Value(std::string("w"))});
  ExprPtr x = Expr::MakeColumn("x", LogicalType::kDouble);
  for (const ExprPtr& pred :
       {Expr::MakeNot(x),
        Expr::MakeAnd({Expr::MakeCompare(
                           CompareOp::kGt, IntCol("a"),
                           Expr::MakeConstant(Value(int64_t{0}),
                                              LogicalType::kInt64)),
                       x})}) {
    auto fast = ev.EvaluateSelection(*pred, chunk);
    auto slow = ev.EvaluateSelectionScalar(*pred, chunk);
    ASSERT_TRUE(fast.ok()) << pred->ToString();
    ASSERT_TRUE(slow.ok()) << pred->ToString();
    EXPECT_EQ(*fast, *slow) << pred->ToString();
  }
}

TEST(VectorizedKernels, AccumulateAndMinMaxSkipNulls) {
  ColumnVector v(LogicalType::kInt64);
  v.AppendInt(4);
  v.AppendNull();
  v.AppendInt(-2);
  v.AppendInt(10);
  int64_t count = 0, isum = 0;
  double dsum = 0.0;
  kernels::Accumulate(v, &count, &isum, &dsum);
  EXPECT_EQ(count, 3);
  EXPECT_EQ(isum, 12);
  EXPECT_DOUBLE_EQ(dsum, 12.0);
  Value lo, hi;
  bool has_value = false;
  kernels::MinMax(v, &lo, &hi, &has_value);
  ASSERT_TRUE(has_value);
  EXPECT_EQ(lo.AsInt(), -2);
  EXPECT_EQ(hi.AsInt(), 10);

  ColumnVector all_null(LogicalType::kDouble);
  all_null.AppendNull();
  all_null.AppendNull();
  has_value = false;
  kernels::MinMax(all_null, &lo, &hi, &has_value);
  EXPECT_FALSE(has_value);
}

TEST(ZoneMapPruning, NeverDropsQualifyingRows) {
  Rng rng(23);
  const std::vector<std::string> schema = {"k"};
  Evaluator ev(&schema);
  for (int iter = 0; iter < 80; ++iter) {
    // Random (sometimes NULL-bearing, sometimes sorted) column split into
    // small row groups with zone maps — the scan's pruning unit.
    Table table("t", {{"k", LogicalType::kInt64}}, /*row_group_size=*/16);
    DataChunk data({LogicalType::kInt64});
    const size_t rows = 16 * static_cast<size_t>(rng.UniformInt(2, 6));
    std::vector<Value> values;
    for (size_t r = 0; r < rows; ++r) {
      values.push_back(rng.NextDouble() < 0.1
                           ? Value::Null()
                           : Value(rng.UniformInt(-100, 100)));
    }
    if (iter % 3 == 0) {
      std::sort(values.begin(), values.end(),
                [](const Value& a, const Value& b) { return a < b; });
    }
    for (const auto& v : values) data.AppendRow({v});
    table.Append(data);

    const CompareOp ops[] = {CompareOp::kEq, CompareOp::kNe, CompareOp::kLt,
                             CompareOp::kLe, CompareOp::kGt, CompareOp::kGe};
    CompareOp op = ops[rng.UniformInt(0, 5)];
    Value constant(rng.UniformInt(-110, 110));
    ExprPtr pred = Expr::MakeCompare(
        op, IntCol("k"), Expr::MakeConstant(constant, LogicalType::kInt64));
    for (const auto& group : table.row_groups()) {
      if (group.zones[0].MayMatch(op, constant)) continue;
      // Pruned group: the scalar oracle must agree that nothing matches.
      auto sel = ev.EvaluateSelectionScalar(*pred, group.data);
      ASSERT_TRUE(sel.ok());
      EXPECT_TRUE(sel->empty())
          << "zone map dropped qualifying rows: op " << CompareOpName(op)
          << " const " << constant.ToString();
    }
  }
}

// ------------------------------------------------------------ fused tier
// Three-way parity: the fused single-pass kernels must agree with the
// per-kernel vectorized path AND the scalar reference interpreter on the
// same randomized chunks. The registry is the shared dispatch point, so
// these tests also pin down exactly which shapes compile.

const std::vector<LogicalType> kSchemaTypes = {
    LogicalType::kInt64, LogicalType::kInt64, LogicalType::kDouble,
    LogicalType::kVarchar};

/// Random conjunction drawn only from shapes the registry instantiates:
/// column-vs-constant compares over every type family, numeric
/// column-vs-column, and LIKE with and without ESCAPE.
ExprPtr RandomFusableConjunction(Rng* rng) {
  const CompareOp ops[] = {CompareOp::kEq, CompareOp::kNe, CompareOp::kLt,
                           CompareOp::kLe, CompareOp::kGt, CompareOp::kGe};
  const int terms = static_cast<int>(rng->UniformInt(1, 4));
  std::vector<ExprPtr> kids;
  for (int t = 0; t < terms; ++t) {
    CompareOp op = ops[rng->UniformInt(0, 5)];
    switch (rng->UniformInt(0, 5)) {
      case 0:
        kids.push_back(Expr::MakeCompare(
            op, IntCol("a"),
            Expr::MakeConstant(Value(rng->UniformInt(-40, 40)),
                               LogicalType::kInt64)));
        break;
      case 1:
        kids.push_back(Expr::MakeCompare(
            op, Expr::MakeColumn("x", LogicalType::kDouble),
            Expr::MakeConstant(Value(rng->Uniform(-8.0, 8.0)),
                               LogicalType::kDouble)));
        break;
      case 2:
        kids.push_back(Expr::MakeCompare(op, IntCol("a"), IntCol("b")));
        break;
      case 3:  // mixed int-vs-double column compare (kNumColCol)
        kids.push_back(Expr::MakeCompare(
            op, IntCol("b"), Expr::MakeColumn("x", LogicalType::kDouble)));
        break;
      case 4:
        kids.push_back(Expr::MakeCompare(
            op, Expr::MakeColumn("s", LogicalType::kVarchar),
            Expr::MakeConstant(Value(std::string(kWords[rng->UniformInt(0, 6)])),
                               LogicalType::kVarchar)));
        break;
      default:
        kids.push_back(
            Expr::MakeLike(Expr::MakeColumn("s", LogicalType::kVarchar),
                           rng->NextDouble() < 0.5 ? "%a%" : "be!_ta",
                           rng->NextDouble() < 0.5 ? '\0' : '!'));
        break;
    }
  }
  if (kids.size() == 1) return std::move(kids[0]);
  return Expr::MakeAnd(std::move(kids));
}

TEST(FusedParity, RandomConjunctionsMatchVectorizedAndScalar) {
  Rng rng(31);
  Evaluator ev(&kSchema);
  const FusedKernelRegistry& registry = FusedKernelRegistry::Global();
  SelectionVector fused_sel;
  for (int iter = 0; iter < 150; ++iter) {
    const bool with_nulls = iter % 2 == 1;
    DataChunk chunk = RandomChunk(&rng, 193, with_nulls);
    ExprPtr pred = RandomFusableConjunction(&rng);
    ASSERT_TRUE(registry.CanCompile(*pred, kSchema, kSchemaTypes))
        << pred->ToString();
    auto fused = registry.Compile(*pred, kSchema, kSchemaTypes);
    ASSERT_TRUE(fused.has_value()) << pred->ToString();
    ASSERT_TRUE(fused->Select(chunk, &fused_sel).ok()) << pred->ToString();
    auto fast = ev.EvaluateSelection(*pred, chunk);
    auto slow = ev.EvaluateSelectionScalar(*pred, chunk);
    ASSERT_TRUE(fast.ok()) << pred->ToString();
    ASSERT_TRUE(slow.ok()) << pred->ToString();
    EXPECT_EQ(fused_sel, *fast) << "iter " << iter << " nulls=" << with_nulls
                                << " pred " << pred->ToString();
    EXPECT_EQ(fused_sel, *slow) << "iter " << iter << " nulls=" << with_nulls
                                << " pred " << pred->ToString();
  }
}

TEST(FusedParity, EmptyAllPassAndNullConstantSelections) {
  Rng rng(43);
  Evaluator ev(&kSchema);
  const FusedKernelRegistry& registry = FusedKernelRegistry::Global();
  DataChunk chunk = RandomChunk(&rng, 211, /*with_nulls=*/true);
  SelectionVector fused_sel;

  auto check = [&](const ExprPtr& pred) {
    auto fused = registry.Compile(*pred, kSchema, kSchemaTypes);
    ASSERT_TRUE(fused.has_value()) << pred->ToString();
    ASSERT_TRUE(fused->Select(chunk, &fused_sel).ok());
    auto slow = ev.EvaluateSelectionScalar(*pred, chunk);
    ASSERT_TRUE(slow.ok());
    EXPECT_EQ(fused_sel, *slow) << pred->ToString();
  };

  // Empty selection: no row satisfies a < -1000.
  ExprPtr none = Expr::MakeCompare(
      CompareOp::kLt, IntCol("a"),
      Expr::MakeConstant(Value(int64_t{-1000}), LogicalType::kInt64));
  check(none);

  // All-pass on the non-NULL rows: a <= 1000 keeps every valid row but
  // must still deselect NULLs (SQL three-valued logic).
  ExprPtr all = Expr::MakeCompare(
      CompareOp::kLe, IntCol("a"),
      Expr::MakeConstant(Value(int64_t{1000}), LogicalType::kInt64));
  check(all);

  // A conjunct comparing against a NULL constant compiles to always-false.
  ExprPtr with_null = Expr::MakeAnd({
      Expr::MakeCompare(CompareOp::kLe, IntCol("a"),
                        Expr::MakeConstant(Value(int64_t{1000}),
                                           LogicalType::kInt64)),
      Expr::MakeCompare(CompareOp::kEq, IntCol("b"),
                        Expr::MakeConstant(Value::Null(),
                                           LogicalType::kInt64)),
  });
  auto fused = registry.Compile(*with_null, kSchema, kSchemaTypes);
  ASSERT_TRUE(fused.has_value());
  EXPECT_TRUE(fused->always_false());
  check(with_null);

  // Zero-row chunk: every path agrees on the empty selection.
  DataChunk empty({LogicalType::kInt64, LogicalType::kInt64,
                   LogicalType::kDouble, LogicalType::kVarchar});
  auto fused_all = registry.Compile(*all, kSchema, kSchemaTypes);
  ASSERT_TRUE(fused_all.has_value());
  ASSERT_TRUE(fused_all->Select(empty, &fused_sel).ok());
  EXPECT_TRUE(fused_sel.empty());
}

TEST(FusedParity, LikeEscapeInFusedConjunction) {
  DataChunk chunk({LogicalType::kInt64, LogicalType::kInt64,
                   LogicalType::kDouble, LogicalType::kVarchar});
  const char* samples[] = {"50%",  "50x", "a_b", "axb",    "a!b", "100%",
                           "",     "%",   "_",   "!",      "50% off"};
  int64_t i = 0;
  for (const char* s : samples) {
    chunk.AppendRow({Value(i++), Value(int64_t{0}), Value(0.0),
                     Value(std::string(s))});
  }
  chunk.AppendRow({Value(i), Value(int64_t{0}), Value(0.0), Value::Null()});
  Evaluator ev(&kSchema);
  const FusedKernelRegistry& registry = FusedKernelRegistry::Global();
  SelectionVector fused_sel;
  for (const char* pattern : {"50!%", "a!_b", "a!!b", "!%%", "%!%%", "!_"}) {
    // LIKE ESCAPE riding inside a fused conjunction with a numeric term.
    ExprPtr pred = Expr::MakeAnd({
        Expr::MakeCompare(CompareOp::kGe, IntCol("a"),
                          Expr::MakeConstant(Value(int64_t{0}),
                                             LogicalType::kInt64)),
        Expr::MakeLike(Expr::MakeColumn("s", LogicalType::kVarchar), pattern,
                       '!'),
    });
    auto fused = registry.Compile(*pred, kSchema, kSchemaTypes);
    ASSERT_TRUE(fused.has_value()) << pattern;
    ASSERT_TRUE(fused->Select(chunk, &fused_sel).ok()) << pattern;
    auto fast = ev.EvaluateSelection(*pred, chunk);
    auto slow = ev.EvaluateSelectionScalar(*pred, chunk);
    ASSERT_TRUE(fast.ok()) << pattern;
    ASSERT_TRUE(slow.ok()) << pattern;
    EXPECT_EQ(fused_sel, *fast) << pattern;
    EXPECT_EQ(fused_sel, *slow) << pattern;
  }
}

TEST(FusedRegistry, DeclinesUnsupportedShapes) {
  const FusedKernelRegistry& registry = FusedKernelRegistry::Global();
  auto int_const = [](int64_t v) {
    return Expr::MakeConstant(Value(v), LogicalType::kInt64);
  };
  ExprPtr cmp_a = Expr::MakeCompare(CompareOp::kLt, IntCol("a"), int_const(3));
  ExprPtr cmp_b = Expr::MakeCompare(CompareOp::kGt, IntCol("b"), int_const(1));
  // OR, NOT, and arithmetic operands have no fused instantiation.
  for (const ExprPtr& bad :
       {Expr::MakeOr({cmp_a->Clone(), cmp_b->Clone()}),
        Expr::MakeNot(cmp_a->Clone()),
        Expr::MakeCompare(CompareOp::kLt,
                          Expr::MakeArith('+', IntCol("a"), IntCol("b")),
                          int_const(5))}) {
    EXPECT_FALSE(registry.CanCompile(*bad, kSchema, kSchemaTypes))
        << bad->ToString();
    EXPECT_FALSE(registry.Compile(*bad, kSchema, kSchemaTypes).has_value())
        << bad->ToString();
  }
  // ...and one unsupported conjunct spoils the whole conjunction.
  ExprPtr mixed = Expr::MakeAnd(
      {cmp_a->Clone(), Expr::MakeNot(cmp_b->Clone())});
  EXPECT_FALSE(registry.CanCompile(*mixed, kSchema, kSchemaTypes));

  // String-vs-numeric mixes decline; SUM over a string column declines.
  ExprPtr str_num = Expr::MakeCompare(
      CompareOp::kEq, Expr::MakeColumn("s", LogicalType::kVarchar),
      int_const(1));
  EXPECT_FALSE(registry.CanCompile(*str_num, kSchema, kSchemaTypes));
  std::vector<FusedAggSpec> specs;
  std::vector<ExprPtr> bad_aggs;
  bad_aggs.push_back(Expr::MakeAgg(
      AggFunc::kSum, Expr::MakeColumn("s", LogicalType::kVarchar)));
  EXPECT_FALSE(
      registry.CompileAggregates(bad_aggs, kSchema, kSchemaTypes, &specs));
  std::vector<ExprPtr> computed_aggs;
  computed_aggs.push_back(Expr::MakeAgg(
      AggFunc::kSum, Expr::MakeArith('+', IntCol("a"), IntCol("b"))));
  EXPECT_FALSE(registry.CompileAggregates(computed_aggs, kSchema,
                                          kSchemaTypes, &specs));
}

TEST(FusedParity, SelectGatherMatchesSelectPlusGather) {
  Rng rng(57);
  const FusedKernelRegistry& registry = FusedKernelRegistry::Global();
  for (int iter = 0; iter < 40; ++iter) {
    DataChunk chunk = RandomChunk(&rng, 173, iter % 2 == 1);
    ExprPtr pred = RandomFusableConjunction(&rng);
    auto fused = registry.Compile(*pred, kSchema, kSchemaTypes);
    ASSERT_TRUE(fused.has_value());
    SelectionVector sel;
    ASSERT_TRUE(fused->Select(chunk, &sel).ok());
    DataChunk projected({LogicalType::kInt64, LogicalType::kVarchar});
    SelectionVector scratch;
    ASSERT_TRUE(
        fused->SelectGather(chunk, {0, 3}, &projected, &scratch).ok());
    ASSERT_EQ(projected.num_rows(), sel.size());
    DataChunk manual({LogicalType::kInt64, LogicalType::kVarchar});
    manual.column(0) = chunk.column(0).Gather(sel);
    manual.column(1) = chunk.column(3).Gather(sel);
    EXPECT_EQ(projected.ToString(-1), manual.ToString(-1)) << "iter " << iter;
  }
}

TEST(FusedParity, FilterAggregateFoldMatchesSelectedKernels) {
  Rng rng(71);
  const FusedKernelRegistry& registry = FusedKernelRegistry::Global();
  std::vector<ExprPtr> aggs;
  aggs.push_back(Expr::MakeAgg(AggFunc::kCountStar, nullptr));
  aggs.push_back(Expr::MakeAgg(AggFunc::kCount,
                               Expr::MakeColumn("x", LogicalType::kDouble)));
  aggs.push_back(Expr::MakeAgg(AggFunc::kSum, IntCol("a")));
  aggs.push_back(Expr::MakeAgg(AggFunc::kAvg,
                               Expr::MakeColumn("x", LogicalType::kDouble)));
  aggs.push_back(Expr::MakeAgg(AggFunc::kMin, IntCol("a")));
  aggs.push_back(Expr::MakeAgg(AggFunc::kMax,
                               Expr::MakeColumn("x", LogicalType::kDouble)));
  std::vector<FusedAggSpec> specs;
  ASSERT_TRUE(registry.CompileAggregates(aggs, kSchema, kSchemaTypes, &specs));
  ASSERT_EQ(specs.size(), aggs.size());

  Evaluator ev(&kSchema);
  for (int iter = 0; iter < 30; ++iter) {
    DataChunk chunk = RandomChunk(&rng, 149, iter % 2 == 1);
    ExprPtr pred = RandomFusableConjunction(&rng);
    auto fused = registry.Compile(*pred, kSchema, kSchemaTypes);
    ASSERT_TRUE(fused.has_value());
    std::vector<FusedAggState> states(specs.size());
    SelectionVector scratch;
    auto survivors =
        FusedFilterAggregate(&*fused, chunk, specs, &states, &scratch);
    ASSERT_TRUE(survivors.ok());

    auto sel = ev.EvaluateSelectionScalar(*pred, chunk);
    ASSERT_TRUE(sel.ok());
    EXPECT_EQ(*survivors, sel->size());
    // COUNT(*).
    EXPECT_EQ(states[0].count, static_cast<int64_t>(sel->size()));
    // COUNT(x).
    EXPECT_EQ(states[1].count,
              kernels::CountValidSelected(chunk.column(2), *sel));
    // SUM(a): integer accumulation stays exact.
    int64_t count = 0, isum = 0;
    double dsum = 0.0;
    kernels::AccumulateSelected(chunk.column(0), *sel, &count, &isum, &dsum);
    EXPECT_EQ(states[2].count, count);
    EXPECT_EQ(states[2].isum, isum);
    EXPECT_EQ(states[2].dsum, dsum);  // bit-identical, not approximately
    // AVG(x): double accumulation must be bit-identical to the unfused
    // kernel (same visit order, same branch structure).
    count = 0; isum = 0; dsum = 0.0;
    kernels::AccumulateSelected(chunk.column(2), *sel, &count, &isum, &dsum);
    EXPECT_EQ(states[3].count, count);
    EXPECT_EQ(states[3].dsum, dsum);
    // MIN(a) / MAX(x).
    Value lo, hi;
    bool has_value = false;
    kernels::MinMaxSelected(chunk.column(0), *sel, &lo, &hi, &has_value);
    EXPECT_EQ(states[4].has_value, has_value);
    if (has_value) {
      EXPECT_EQ(states[4].min.AsInt(), lo.AsInt());
    }
    has_value = false;
    kernels::MinMaxSelected(chunk.column(2), *sel, &lo, &hi, &has_value);
    EXPECT_EQ(states[5].has_value, has_value);
    if (has_value) {
      EXPECT_EQ(states[5].max.AsDouble(), hi.AsDouble());
    }
  }
}

/// Engine-level fixture: a clustered fact table large enough to span many
/// row groups, queried through the optimizer like exec_test does.
class VectorizedEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto fact = std::make_shared<Table>(
        "fact", std::vector<ColumnDef>{{"k", LogicalType::kInt64},
                                       {"grp", LogicalType::kInt64},
                                       {"amount", LogicalType::kDouble}},
        /*row_group_size=*/64);
    DataChunk chunk({LogicalType::kInt64, LogicalType::kInt64,
                     LogicalType::kDouble});
    Rng rng(99);
    for (int64_t i = 0; i < 2048; ++i) {  // k is insertion-ordered
      chunk.AppendRow({Value(i), Value(rng.UniformInt(0, 7)),
                       Value(rng.Uniform(0.0, 100.0))});
    }
    fact->Append(chunk);
    meta_.RegisterTable(fact);
    meta_.AnalyzeAll();
  }

  Result<QueryResult> Run(const std::string& sql, LocalEngine* engine) {
    Optimizer opt(&meta_);
    auto plan = opt.OptimizeSql(sql);
    EXPECT_TRUE(plan.ok()) << sql;
    return engine->Execute(plan->get());
  }

  MetadataService meta_;
};

TEST_F(VectorizedEngineTest, SelectivePredicatePrunesMostMorselsAndAgrees) {
  LocalEngine engine(4);
  // k < 256 covers 4 of 32 row groups: pruning must skip >= 50% of the
  // morsels and still return exactly the qualifying rows.
  auto r = Run("SELECT k FROM fact WHERE k < 256", &engine);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->chunk.num_rows(), 256u);
  const ScanStats& stats = engine.last_scan_stats();
  EXPECT_EQ(stats.morsels_total, 32u);
  EXPECT_GE(stats.pruned_fraction(), 0.5)
      << stats.morsels_pruned << "/" << stats.morsels_total;
  // No qualifying row was dropped: every k in [0, 256) is present.
  int64_t sum = 0;
  for (size_t i = 0; i < r->chunk.num_rows(); ++i) {
    sum += r->chunk.column(0).GetInt(i);
  }
  EXPECT_EQ(sum, 255 * 256 / 2);
}

TEST_F(VectorizedEngineTest, AggregationDeterministicAcrossThreadCounts) {
  const std::string sql =
      "SELECT grp, count(*) AS n, sum(amount) AS total, min(k) AS lo, "
      "max(k) AS hi, avg(amount) AS mean FROM fact GROUP BY grp "
      "ORDER BY grp";
  LocalEngine serial(1);
  auto a = Run(sql, &serial);
  ASSERT_TRUE(a.ok());
  for (size_t threads : {2u, 4u, 8u}) {
    LocalEngine parallel(threads);
    auto b = Run(sql, &parallel);
    ASSERT_TRUE(b.ok());
    // Bit-exact equality, doubles included: partials merge in morsel
    // order regardless of thread interleaving.
    EXPECT_EQ(a->chunk.ToString(-1), b->chunk.ToString(-1))
        << "threads=" << threads;
  }
}

TEST_F(VectorizedEngineTest, AllNullAggregateInputsZeroFill) {
  // Result chunks stay NULL-free: MIN/MAX over an all-NULL input column
  // zero-fills like the empty-input branch, instead of leaking NULLs.
  auto t = std::make_shared<Table>(
      "nullcol", std::vector<ColumnDef>{{"v", LogicalType::kDouble}});
  DataChunk dc({LogicalType::kDouble});
  dc.AppendRow({Value::Null()});
  dc.AppendRow({Value::Null()});
  t->Append(dc);
  meta_.RegisterTable(t);
  meta_.AnalyzeAll();

  LocalEngine engine(2);
  auto r = Run("SELECT min(v) AS lo, max(v) AS hi, sum(v) AS s, "
               "count(v) AS n FROM nullcol",
               &engine);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->chunk.num_rows(), 1u);
  for (size_t c = 0; c < 3; ++c) {
    EXPECT_FALSE(r->chunk.column(c).IsNull(0)) << "col " << c;
    EXPECT_DOUBLE_EQ(r->chunk.column(c).GetDouble(0), 0.0) << "col " << c;
  }
  EXPECT_EQ(r->chunk.column(3).GetInt(0), 0);  // COUNT skips NULLs
}

TEST_F(VectorizedEngineTest, DoubleGroupKeysAreBitExact) {
  // Nearby doubles that round to the same 6-decimal string must remain
  // distinct groups; +0.0 and -0.0 compare equal and stay one group.
  auto t = std::make_shared<Table>(
      "doubles", std::vector<ColumnDef>{{"d", LogicalType::kDouble}});
  DataChunk dc({LogicalType::kDouble});
  dc.AppendRow({Value(1.0000001)});
  dc.AppendRow({Value(1.0000004)});
  dc.AppendRow({Value(0.0)});
  dc.AppendRow({Value(-0.0)});
  t->Append(dc);
  meta_.RegisterTable(t);
  meta_.AnalyzeAll();

  LocalEngine engine(2);
  auto r = Run("SELECT d, count(*) AS n FROM doubles GROUP BY d", &engine);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->chunk.num_rows(), 3u);  // two near-1.0 groups + one zero group
}

TEST_F(VectorizedEngineTest, AggregateFreeGroupBy) {
  // GROUP BY with no aggregate list: one output row per distinct group.
  LocalEngine engine(4);
  auto r = Run("SELECT grp FROM fact GROUP BY grp ORDER BY grp", &engine);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->chunk.num_rows(), 8u);
  for (int64_t g = 0; g < 8; ++g) {
    EXPECT_EQ(r->chunk.column(0).GetInt(static_cast<size_t>(g)), g);
  }
}

TEST_F(VectorizedEngineTest, CountOverStringColumn) {
  // COUNT(col) is legal on any type; the fold must count rows without
  // touching the (string) payload as if it were numeric.
  auto names = std::make_shared<Table>(
      "names", std::vector<ColumnDef>{{"g", LogicalType::kInt64},
                                      {"label", LogicalType::kVarchar}});
  DataChunk nc({LogicalType::kInt64, LogicalType::kVarchar});
  for (int64_t i = 0; i < 10; ++i) {
    nc.AppendRow({Value(i % 2), Value(std::string(i % 3 == 0 ? "x" : "y"))});
  }
  names->Append(nc);
  meta_.RegisterTable(names);
  meta_.AnalyzeAll();

  LocalEngine engine(4);
  auto global = Run("SELECT count(label) AS n FROM names", &engine);
  ASSERT_TRUE(global.ok()) << global.status().ToString();
  EXPECT_EQ(global->chunk.column(0).GetInt(0), 10);

  auto grouped = Run(
      "SELECT g, count(label) AS n FROM names GROUP BY g ORDER BY g",
      &engine);
  ASSERT_TRUE(grouped.ok()) << grouped.status().ToString();
  ASSERT_EQ(grouped->chunk.num_rows(), 2u);
  EXPECT_EQ(grouped->chunk.column(1).GetInt(0), 5);
  EXPECT_EQ(grouped->chunk.column(1).GetInt(1), 5);
}

TEST_F(VectorizedEngineTest, CrossJoinWithoutEquiKeys) {
  // A disconnected join graph becomes a hash join with an empty key list;
  // every probe row must match every build row (regression: the hash
  // kernel must emit one seed hash per row even with zero key columns).
  auto tiny = std::make_shared<Table>(
      "tiny", std::vector<ColumnDef>{{"t", LogicalType::kInt64}});
  DataChunk tc({LogicalType::kInt64});
  for (int64_t i = 0; i < 3; ++i) tc.AppendRow({Value(i)});
  tiny->Append(tc);
  meta_.RegisterTable(tiny);
  meta_.AnalyzeAll();

  LocalEngine engine(4);
  auto r = Run("SELECT count(*) AS n FROM fact, tiny WHERE k < 128", &engine);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->chunk.num_rows(), 1u);
  EXPECT_EQ(r->chunk.column(0).GetInt(0), 128 * 3);
}

TEST_F(VectorizedEngineTest, JoinAndFilterMatchScalarOracle) {
  // Star-style join through the engine vs a hand-computed expectation.
  auto dim = std::make_shared<Table>(
      "dim", std::vector<ColumnDef>{{"id", LogicalType::kInt64},
                                    {"label", LogicalType::kVarchar}});
  DataChunk dc({LogicalType::kInt64, LogicalType::kVarchar});
  for (int64_t g = 0; g < 8; ++g) {
    dc.AppendRow({Value(g), Value(std::string(g % 2 == 0 ? "even" : "odd"))});
  }
  dim->Append(dc);
  meta_.RegisterTable(dim);
  meta_.AnalyzeAll();

  LocalEngine engine(4);
  auto r = Run("SELECT count(*) AS n FROM fact, dim "
               "WHERE grp = id AND label = 'even' AND k < 512",
               &engine);
  ASSERT_TRUE(r.ok());
  // Oracle: count rows with k < 512 and even grp, straight off the table.
  auto fact = meta_.GetTable("fact").value();
  DataChunk all = fact->Scan();
  int64_t expected = 0;
  for (size_t i = 0; i < all.num_rows(); ++i) {
    if (all.column(0).GetInt(i) < 512 && all.column(1).GetInt(i) % 2 == 0) {
      ++expected;
    }
  }
  ASSERT_EQ(r->chunk.num_rows(), 1u);
  EXPECT_EQ(r->chunk.column(0).GetInt(0), expected);
}

// ---------------------------------------------------- fused engine paths

PhysicalPlan* FindNodeOfKind(PhysicalPlan* n, PhysicalPlan::Kind kind) {
  if (n == nullptr) return nullptr;
  if (n->kind == kind) return n;
  for (auto& c : n->children) {
    if (PhysicalPlan* f = FindNodeOfKind(c.get(), kind)) return f;
  }
  return nullptr;
}

/// Annotate every fusable site the way the fuse_kernels pass would when it
/// prices fusion net-positive: scans with pushed filters, global
/// aggregates, hash-join probes. Lets the engine tests exercise the fused
/// execution paths without depending on the cost model's verdict.
void AnnotateAllFusable(PhysicalPlan* n) {
  if (n == nullptr) return;
  for (auto& c : n->children) AnnotateAllFusable(c.get());
  if (n->kind == PhysicalPlan::Kind::kTableScan && !n->scan_filters.empty()) {
    n->fuse_scan_filter = true;
  }
  if (n->kind == PhysicalPlan::Kind::kHashAggregate && n->group_by.empty()) {
    n->fuse_aggregate = true;
  }
  if (n->kind == PhysicalPlan::Kind::kHashJoin) n->fuse_probe = true;
}

TEST_F(VectorizedEngineTest, FusedScanFilterBitIdenticalToInterpreted) {
  const std::string sql = "SELECT k FROM fact WHERE k < 256 AND grp >= 2";
  LocalEngine plain_engine(4);
  auto plain = Run(sql, &plain_engine);
  ASSERT_TRUE(plain.ok());
  EXPECT_FALSE(plain_engine.last_fused_stats().any_fused())
      << "unannotated plan must stay on the interpreted path";

  Optimizer opt(&meta_);
  auto plan = opt.OptimizeSql(sql);
  ASSERT_TRUE(plan.ok());
  AnnotateAllFusable(plan->get());
  LocalEngine fused_engine(4);
  auto fused = fused_engine.Execute(plan->get());
  ASSERT_TRUE(fused.ok()) << fused.status().ToString();
  EXPECT_GT(fused_engine.last_fused_stats().fused_filter_morsels, 0u);
  EXPECT_EQ(fused->chunk.ToString(-1), plain->chunk.ToString(-1));
}

TEST_F(VectorizedEngineTest, FusedGlobalAggregateBitIdenticalToInterpreted) {
  const std::string sql =
      "SELECT count(*) AS n, sum(amount) AS s, min(k) AS lo, max(k) AS hi, "
      "avg(amount) AS mean FROM fact WHERE k < 1024 AND grp >= 2";
  LocalEngine plain_engine(4);
  auto plain = Run(sql, &plain_engine);
  ASSERT_TRUE(plain.ok());

  Optimizer opt(&meta_);
  auto plan = opt.OptimizeSql(sql);
  ASSERT_TRUE(plan.ok());
  AnnotateAllFusable(plan->get());
  LocalEngine fused_engine(4);
  auto fused = fused_engine.Execute(plan->get());
  ASSERT_TRUE(fused.ok()) << fused.status().ToString();
  EXPECT_GT(fused_engine.last_fused_stats().fused_agg_morsels, 0u);
  // Bit-exact double sums: the fused fold mirrors the unfused kernels'
  // branch structure and visit order.
  EXPECT_EQ(fused->chunk.ToString(-1), plain->chunk.ToString(-1));
}

TEST_F(VectorizedEngineTest, FusedProbePipelineBitIdenticalToInterpreted) {
  auto dim = std::make_shared<Table>(
      "fdim", std::vector<ColumnDef>{{"id", LogicalType::kInt64},
                                     {"label", LogicalType::kVarchar}});
  DataChunk dc({LogicalType::kInt64, LogicalType::kVarchar});
  for (int64_t g = 0; g < 8; ++g) {
    dc.AppendRow({Value(g), Value(std::string(g % 2 == 0 ? "even" : "odd"))});
  }
  dim->Append(dc);
  meta_.RegisterTable(dim);
  meta_.AnalyzeAll();

  const std::string sql =
      "SELECT k, label FROM fact, fdim WHERE grp = id AND k < 256";
  LocalEngine plain_engine(4);
  auto plain = Run(sql, &plain_engine);
  ASSERT_TRUE(plain.ok());

  Optimizer opt(&meta_);
  auto plan = opt.OptimizeSql(sql);
  ASSERT_TRUE(plan.ok());
  AnnotateAllFusable(plan->get());
  ASSERT_NE(FindNodeOfKind(plan->get(), PhysicalPlan::Kind::kHashJoin),
            nullptr);
  LocalEngine fused_engine(4);
  auto fused = fused_engine.Execute(plan->get());
  ASSERT_TRUE(fused.ok()) << fused.status().ToString();
  EXPECT_GT(fused_engine.last_fused_stats().fused_probe_morsels, 0u);
  EXPECT_EQ(fused->chunk.ToString(-1), plain->chunk.ToString(-1));
}

TEST_F(VectorizedEngineTest, SurvivingMorselPredictionMatchesEngineScanStats) {
  // The cost model charges batch dispatch per morsel that survives
  // zone-map pruning (SurvivingScanMorsels). Its ceil-prediction from the
  // planner's prune_keep_fraction must agree with what the engine actually
  // dispatches for the same plan, within the one-morsel ceiling slack.
  Optimizer opt(&meta_);
  auto plan =
      opt.OptimizeSql("SELECT k FROM fact WHERE k < 256 AND grp >= 2");
  ASSERT_TRUE(plan.ok());
  PhysicalPlan* scan =
      FindNodeOfKind(plan->get(), PhysicalPlan::Kind::kTableScan);
  ASSERT_NE(scan, nullptr);
  const double predicted = SurvivingScanMorsels(*scan);
  ASSERT_GE(predicted, 0.0);

  LocalEngine engine(4);
  auto r = engine.Execute(plan->get());
  ASSERT_TRUE(r.ok());
  const ScanStats& stats = engine.last_scan_stats();
  const double actual =
      static_cast<double>(stats.morsels_total - stats.morsels_pruned);
  EXPECT_NEAR(predicted, actual, 1.0)
      << "total " << stats.morsels_total << " pruned "
      << stats.morsels_pruned;
  // k < 256 keeps 4 of 32 ordered row groups: the pruned scan must be
  // charged far fewer dispatches than an unpruned one.
  EXPECT_LT(predicted, static_cast<double>(stats.morsels_total) / 2.0);
}

TEST_F(VectorizedEngineTest, UnfusableShapeFallsBackAndStillAgrees) {
  // OR inside the pushed filter: the registry declines, the engine counts
  // a fallback morsel, and the interpreted path serves the query.
  const std::string sql =
      "SELECT k FROM fact WHERE k < 256 OR grp = 3";
  Optimizer opt(&meta_);
  auto plan = opt.OptimizeSql(sql);
  ASSERT_TRUE(plan.ok());
  LocalEngine plain_engine(4);
  auto plain = plain_engine.Execute(plan->get());
  ASSERT_TRUE(plain.ok());

  auto annotated = opt.OptimizeSql(sql);
  ASSERT_TRUE(annotated.ok());
  AnnotateAllFusable(annotated->get());
  LocalEngine fused_engine(4);
  auto fused = fused_engine.Execute(annotated->get());
  ASSERT_TRUE(fused.ok()) << fused.status().ToString();
  const FusedExecStats& stats = fused_engine.last_fused_stats();
  EXPECT_FALSE(stats.any_fused());
  EXPECT_EQ(fused->chunk.ToString(-1), plain->chunk.ToString(-1));
}

}  // namespace
}  // namespace costdb
