#include <gtest/gtest.h>

#include "stats/statistics_service.h"
#include "tuning/predictor.h"
#include "workload/ssb.h"

namespace costdb {
namespace {

class StatsServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SsbOptions opts;
    opts.scale = 0.005;
    LoadSsb(&meta_, opts);
  }

  ExecutionRecord Record(const std::string& id, const std::string& sql,
                         Seconds at, Dollars cost = 0.01) {
    Binder binder(&meta_);
    auto q = binder.BindSql(sql);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    return MakeExecutionRecord(id, at, *q, 1.0, 8.0, cost);
  }

  MetadataService meta_;
};

TEST_F(StatsServiceTest, RecordExtractsFootprint) {
  ExecutionRecord rec = Record("Q3", FindQuery("Q3").sql, 0.0);
  EXPECT_EQ(rec.tables.size(), 2u);
  ASSERT_EQ(rec.join_edges.size(), 1u);
  EXPECT_EQ(rec.join_edges[0], "dates.d_datekey=lineorder.lo_datekey");
  // d_year = 1994 is a filter column.
  ASSERT_GE(rec.filter_columns.size(), 1u);
  EXPECT_EQ(rec.filter_columns[0], "dates.d_year");
}

TEST_F(StatsServiceTest, SummariesAccumulate) {
  StatisticsService stats;
  for (int i = 0; i < 10; ++i) {
    stats.Ingest(Record("Q3", FindQuery("Q3").sql, i * 60.0));
  }
  for (int i = 0; i < 5; ++i) {
    stats.Ingest(Record("Q4", FindQuery("Q4").sql, i * 60.0));
  }
  EXPECT_DOUBLE_EQ(stats.table_access_counts().at("lineorder"), 15.0);
  EXPECT_DOUBLE_EQ(stats.table_access_counts().at("dates"), 10.0);
  EXPECT_DOUBLE_EQ(
      stats.join_graph().at("dates.d_datekey=lineorder.lo_datekey"), 10.0);
  EXPECT_DOUBLE_EQ(
      stats.join_graph().at("lineorder.lo_partkey=part.p_partkey"), 5.0);
  EXPECT_NEAR(stats.total_cost(), 0.15, 1e-9);
  EXPECT_DOUBLE_EQ(stats.MeanCost("Q3"), 0.01);
}

TEST_F(StatsServiceTest, SamplingRescalesCounts) {
  StatisticsService::Options opts;
  opts.sampling_rate = 0.25;
  StatisticsService stats(opts);
  ExecutionRecord rec = Record("Q3", FindQuery("Q3").sql, 0.0);
  for (int i = 0; i < 2000; ++i) {
    rec.at = i * 10.0;
    stats.Ingest(rec);
  }
  // Scaled estimate should be near the true 2000 (within 15%).
  EXPECT_NEAR(stats.table_access_counts().at("lineorder"), 2000.0, 300.0);
}

TEST_F(StatsServiceTest, SamplingReducesProfilingOverhead) {
  StatisticsService::Options cheap_opts;
  cheap_opts.sampling_rate = 0.1;
  StatisticsService cheap(cheap_opts);
  StatisticsService full;
  EXPECT_LT(cheap.ProfilingOverhead(10.0), full.ProfilingOverhead(10.0));
}

TEST_F(StatsServiceTest, HotWindowCompaction) {
  StatisticsService::Options opts;
  opts.hot_window = 3600.0;  // 1 hour
  StatisticsService stats(opts);
  ExecutionRecord rec = Record("Q1", FindQuery("Q1").sql, 0.0);
  for (int i = 0; i < 100; ++i) {
    rec.at = i * 100.0;  // spans ~2.8 hours
    stats.Ingest(rec);
  }
  // Raw records beyond the hot window were compacted away...
  EXPECT_LT(stats.hot_record_count(), 50u);
  // ...but the aggregates kept the full history.
  EXPECT_DOUBLE_EQ(stats.table_access_counts().at("lineorder"), 100.0);
  EXPECT_GT(stats.cold_bucket_count(), 0u);
}

TEST_F(StatsServiceTest, HourlyArrivalSeries) {
  StatisticsService stats;
  ExecutionRecord rec = Record("Q2", FindQuery("Q2").sql, 0.0);
  // 3 in hour 0, 1 in hour 2.
  for (Seconds at : {10.0, 20.0, 30.0, 2.5 * 3600.0}) {
    rec.at = at;
    stats.Ingest(rec);
  }
  auto hourly = stats.HourlyArrivals("Q2");
  ASSERT_EQ(hourly.size(), 3u);
  EXPECT_DOUBLE_EQ(hourly[0], 3.0);
  EXPECT_DOUBLE_EQ(hourly[1], 0.0);
  EXPECT_DOUBLE_EQ(hourly[2], 1.0);
  EXPECT_TRUE(stats.HourlyArrivals("unknown").empty());
}

TEST(PredictorTest, MovingAverageOnFlatSeries) {
  WorkloadPredictor predictor;
  std::vector<double> hourly(30, 5.0);
  auto f = predictor.Predict(hourly);
  EXPECT_NEAR(f.arrivals_per_hour, 5.0, 1e-9);
  EXPECT_NEAR(predictor.PredictDailyArrivals(hourly), 120.0, 1e-6);
}

TEST(PredictorTest, DetectsDiurnalPattern) {
  WorkloadPredictor predictor;
  std::vector<double> hourly;
  for (int d = 0; d < 5; ++d) {
    for (int h = 0; h < 24; ++h) {
      hourly.push_back(h >= 9 && h <= 17 ? 10.0 : 1.0);
    }
  }
  auto f = predictor.Predict(hourly);
  EXPECT_TRUE(f.periodic);
  // Mean over a day: 9 busy hours x 10 + 15 x 1 = 105 / 24.
  EXPECT_NEAR(f.arrivals_per_hour, 105.0 / 24.0, 0.01);
  EXPECT_GT(f.confidence, 0.9);
}

TEST(PredictorTest, EmptyHistory) {
  WorkloadPredictor predictor;
  auto f = predictor.Predict({});
  EXPECT_DOUBLE_EQ(f.arrivals_per_hour, 0.0);
  EXPECT_DOUBLE_EQ(f.confidence, 0.0);
}

}  // namespace
}  // namespace costdb
