// Elastic sharded execution: worker count changes at fragment boundaries
// must never change answers (bit-identical to LocalEngine across any
// resize schedule for order-stable plans), the worker-second ledger must
// meter the widths actually held, the ElasticController must accept only
// resizes the cost model prices as net-positive, and the simulator's
// resize predictions must stay comparable to real elastic runs.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "chunk_testing.h"
#include "common/rng.h"
#include "exec/sharded_engine.h"
#include "runtime/elastic_controller.h"
#include "runtime/policies.h"
#include "service/database.h"
#include "service/session.h"
#include "sim/harness.h"
#include "storage/partition.h"

namespace costdb {
namespace {

constexpr size_t kParts = 8;

class ElasticTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DatabaseOptions opts;
    opts.enable_calibration = false;
    plain_ = std::make_unique<Database>(opts);
    part_ = std::make_unique<Database>(opts);

    Rng rng(4321);
    DataChunk oc({LogicalType::kInt64, LogicalType::kInt64,
                  LogicalType::kDouble, LogicalType::kVarchar});
    const char* tags[] = {"red", "green", "blue", "amber"};
    for (int64_t i = 0; i < 16000; ++i) {
      oc.AppendRow({Value(i), Value(rng.UniformInt(0, 599)),
                    Value(rng.Uniform(0.0, 1000.0)),
                    Value(std::string(tags[rng.UniformInt(0, 3)]))});
    }
    DataChunk cc({LogicalType::kInt64, LogicalType::kVarchar,
                  LogicalType::kInt64});
    const char* regions[] = {"na", "emea", "apac"};
    for (int64_t k = 0; k < 600; ++k) {
      cc.AppendRow({Value(k), Value(std::string(regions[k % 3])),
                    Value(rng.UniformInt(0, 99))});
    }
    auto load = [&](Database* db, bool partitioned) {
      auto orders = std::make_shared<Table>(
          "orders", std::vector<ColumnDef>{{"id", LogicalType::kInt64},
                                           {"cust", LogicalType::kInt64},
                                           {"amount", LogicalType::kDouble},
                                           {"tag", LogicalType::kVarchar}},
          512);
      orders->Append(oc);
      auto customer = std::make_shared<Table>(
          "customer", std::vector<ColumnDef>{{"key", LogicalType::kInt64},
                                             {"region", LogicalType::kVarchar},
                                             {"score", LogicalType::kInt64}},
          128);
      customer->Append(cc);
      if (partitioned) {
        ASSERT_TRUE(PartitionTable(orders.get(),
                                   PartitionSpec::Hash("cust", kParts))
                        .ok());
        ASSERT_TRUE(PartitionTable(customer.get(),
                                   PartitionSpec::Hash("key", kParts))
                        .ok());
      }
      db->meta()->RegisterTable(orders);
      db->meta()->RegisterTable(customer);
      db->meta()->AnalyzeAll();
    };
    load(plain_.get(), false);
    load(part_.get(), true);
  }

  /// Run `sql` on LocalEngine and on a ShardedEngine that starts at
  /// `initial` workers and follows `schedule` (one width per resizable
  /// fragment boundary; the last entry repeats). Results must be
  /// bit-identical; returns the engine's usage ledger.
  WorkerUsage ExpectScheduleParity(Database* db, const std::string& sql,
                                   size_t initial,
                                   const std::vector<size_t>& schedule) {
    WorkerUsage usage;
    auto planned = db->PlanSql(sql, UserConstraint());
    EXPECT_TRUE(planned.ok()) << sql << ": " << planned.status().ToString();
    if (!planned.ok()) return usage;
    LocalEngine local(4);
    auto reference = local.Execute(planned->plan.get());
    EXPECT_TRUE(reference.ok()) << reference.status().ToString();
    if (!reference.ok()) return usage;

    ShardedEngine elastic(initial);
    elastic.SetResizer([&schedule](const FragmentBoundary& b) {
      const size_t i = std::min<size_t>(static_cast<size_t>(b.index),
                                        schedule.size() - 1);
      return schedule[i];
    });
    auto result = elastic.Execute(planned->plan.get());
    EXPECT_TRUE(result.ok()) << sql << ": " << result.status().ToString();
    if (!result.ok()) return usage;
    std::string why;
    EXPECT_TRUE(ChunksBitIdentical(reference->chunk, result->chunk, &why))
        << sql << " diverged under schedule starting at " << initial << ": "
        << why;
    return elastic.last_usage();
  }

  std::unique_ptr<Database> plain_;
  std::unique_ptr<Database> part_;
};

TEST_F(ElasticTest, AdversarialResizeSchedulesStayBitIdentical) {
  // Grow, shrink, oscillate, resize-to-1, grow-from-1 — over grouped
  // aggregates (two-phase: the shuffle boundary is where the width
  // changes), global aggregates, and a broadcast join.
  const std::vector<std::string> queries = {
      "SELECT cust, count(*) AS c, sum(id) AS s, min(amount) AS mn "
      "FROM orders GROUP BY cust",
      "SELECT tag, count(*) AS c, avg(id) AS a FROM orders "
      "WHERE amount > 250.0 GROUP BY tag",
      "SELECT o.id, c.region FROM orders o JOIN customer c "
      "ON o.cust = c.key WHERE o.amount > 900.0",
  };
  const std::vector<std::pair<size_t, std::vector<size_t>>> schedules = {
      {2, {6}},           // grow
      {6, {2}},           // shrink
      {3, {5, 2, 7, 3}},  // oscillate
      {4, {1}},           // resize to one
      {1, {6}},           // grow from one
  };
  for (const auto& sql : queries) {
    for (const auto& [initial, schedule] : schedules) {
      ExpectScheduleParity(plain_.get(), sql, initial, schedule);
    }
  }
}

TEST_F(ElasticTest, CoPartitionedJoinSurvivesResizes) {
  // The partition-wise join runs in a leaf fragment whose workers own
  // whole partitions at whatever width is active; the resize happens at
  // the aggregate shuffle above it. No resize schedule may mis-align the
  // join or move its rows.
  const std::string sql =
      "SELECT c.region, sum(o.id) AS s, count(*) AS n FROM orders o "
      "JOIN customer c ON o.cust = c.key GROUP BY c.region";
  auto planned = part_->PlanSql(sql, UserConstraint());
  ASSERT_TRUE(planned.ok());
  ASSERT_NE(planned->plan->ToString().find("Exchange Local"),
            std::string::npos)
      << planned->plan->ToString();
  for (const auto& [initial, schedule] :
       std::vector<std::pair<size_t, std::vector<size_t>>>{
           {2, {6}}, {5, {3, 7}}, {3, {1}}}) {
    ShardedEngine elastic(initial);
    auto sched = schedule;
    elastic.SetResizer([sched](const FragmentBoundary& b) {
      return sched[std::min<size_t>(static_cast<size_t>(b.index),
                                    sched.size() - 1)];
    });
    auto result = elastic.Execute(planned->plan.get());
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    LocalEngine local(4);
    auto reference = local.Execute(planned->plan.get());
    ASSERT_TRUE(reference.ok());
    std::string why;
    EXPECT_TRUE(ChunksBitIdentical(reference->chunk, result->chunk, &why))
        << why;
    // Join rows never cross workers: only the handful of partial-agg rows
    // shuffle.
    EXPECT_LT(elastic.last_exchange_stats().rows_moved(), 2000u);
  }
}

TEST_F(ElasticTest, RandomizedResizeSchedulesStayBitIdentical) {
  Rng rng(2024);
  const char* group_cols[] = {"cust", "tag"};
  for (int trial = 0; trial < 10; ++trial) {
    double lo = rng.Uniform(0.0, 900.0);
    const char* g = group_cols[rng.UniformInt(0, 1)];
    char sql[512];
    if (trial % 2 == 0) {
      std::snprintf(sql, sizeof(sql),
                    "SELECT %s, count(*) AS c, sum(id) AS s, max(amount) AS m "
                    "FROM orders WHERE amount > %.3f GROUP BY %s",
                    g, lo, g);
    } else {
      std::snprintf(sql, sizeof(sql),
                    "SELECT c.region, sum(o.id) AS s FROM orders o JOIN "
                    "customer c ON o.cust = c.key WHERE o.amount > %.3f "
                    "GROUP BY c.region",
                    lo);
    }
    const size_t initial = static_cast<size_t>(rng.UniformInt(1, 7));
    std::vector<size_t> schedule;
    const int len = static_cast<int>(rng.UniformInt(1, 3));
    for (int i = 0; i < len; ++i) {
      schedule.push_back(static_cast<size_t>(rng.UniformInt(1, 7)));
    }
    ExpectScheduleParity(plain_.get(), sql, initial, schedule);
    ExpectScheduleParity(part_.get(), sql, initial, schedule);
  }
}

TEST_F(ElasticTest, UsageLedgerMetersWidthSegments) {
  const std::string sql =
      "SELECT cust, count(*) AS c, sum(id) AS s FROM orders GROUP BY cust";
  WorkerUsage usage = ExpectScheduleParity(plain_.get(), sql, 2, {6});
  EXPECT_EQ(usage.resizes, 1u);
  EXPECT_EQ(usage.peak_workers, 6u);
  EXPECT_EQ(usage.min_workers, 2u);
  EXPECT_EQ(usage.workers_spun_up, 4u);  // engine was built with 2
  EXPECT_GT(usage.wall_seconds, 0.0);
  EXPECT_GT(usage.worker_seconds, 0.0);
  // Every wall second is billed at between min and peak width.
  EXPECT_GE(usage.worker_seconds,
            usage.wall_seconds * static_cast<double>(usage.min_workers) -
                1e-9);
  EXPECT_LE(usage.worker_seconds,
            usage.wall_seconds * static_cast<double>(usage.peak_workers) +
                1e-9);
  // Two distributed fragments (partial agg at 2, final agg at 6) plus the
  // single-worker tail after the gather.
  ASSERT_GE(usage.fragments.size(), 2u);
  EXPECT_EQ(usage.fragments[0].workers, 2u);
  EXPECT_EQ(usage.fragments[1].workers, 6u);

  // A fixed-width run still meters: wall x workers, no resizes.
  WorkerUsage fixed = ExpectScheduleParity(plain_.get(), sql, 4, {4});
  EXPECT_EQ(fixed.resizes, 0u);
  EXPECT_EQ(fixed.peak_workers, 4u);
  EXPECT_NEAR(fixed.worker_seconds, fixed.wall_seconds * 4.0,
              fixed.wall_seconds * 4.0 * 1e-6 + 1e-9);
}

TEST_F(ElasticTest, EngineWidthResetsBetweenQueries) {
  const std::string sql =
      "SELECT cust, count(*) AS c FROM orders GROUP BY cust";
  auto planned = plain_->PlanSql(sql, UserConstraint());
  ASSERT_TRUE(planned.ok());
  ShardedEngine engine(2);
  engine.SetResizer([](const FragmentBoundary&) { return size_t{5}; });
  ASSERT_TRUE(engine.Execute(planned->plan.get()).ok());
  EXPECT_EQ(engine.num_workers(), 5u);
  engine.SetResizer(WidthDecider());
  ASSERT_TRUE(engine.Execute(planned->plan.get()).ok());
  // A resize schedule is per-query: the next run starts back at 2.
  EXPECT_EQ(engine.num_workers(), 2u);
  EXPECT_EQ(engine.last_usage().resizes, 0u);
}

// ---------------------------------------------------------------- pricing

/// Test policy that always proposes a fixed width.
class FixedProposalPolicy : public ResizePolicy {
 public:
  explicit FixedProposalPolicy(int target) : target_(target) {}
  const char* name() const override { return "fixed_proposal"; }
  int OnTick(const PolicyContext&, const PipelineRunView&) override {
    return target_;
  }

 private:
  int target_;
};

TEST_F(ElasticTest, ControllerAcceptsNetPositiveGrow) {
  HardwareCalibration hw;
  hw.worker_spinup_seconds = 0.01;
  InstanceType node = PricingCatalog::Default().default_node();
  CostEstimator estimator(&hw, &node);
  FixedProposalPolicy greedy(8);
  ElasticControllerOptions opts;
  opts.max_workers = 8;
  ElasticController controller(&estimator, &greedy, opts);
  controller.BeginQuery(nullptr, nullptr, UserConstraint(), 2.0, 2);

  FragmentBoundary boundary;
  boundary.index = 0;
  boundary.current_workers = 2;
  boundary.elapsed_seconds = 1.0;  // lots of observed remaining work
  boundary.cuts_remaining = 3;
  boundary.pending_bytes = 1000.0;
  EXPECT_EQ(controller.Decide(boundary), 8u);
  ASSERT_EQ(controller.decisions().size(), 1u);
  const auto d = controller.decisions()[0];
  EXPECT_TRUE(d.resized);
  EXPECT_EQ(d.from, 2u);
  EXPECT_EQ(d.applied, 8u);
  EXPECT_GT(d.predicted_saving_seconds, d.resize_overhead_seconds);
  EXPECT_EQ(controller.resizes_applied(), 1u);
}

TEST_F(ElasticTest, ControllerDeclinesNetNegativeGrow) {
  HardwareCalibration hw;
  hw.worker_spinup_seconds = 1000.0;  // spin-up dwarfs any saving
  InstanceType node = PricingCatalog::Default().default_node();
  CostEstimator estimator(&hw, &node);
  FixedProposalPolicy greedy(8);
  ElasticControllerOptions opts;
  opts.max_workers = 8;
  ElasticController controller(&estimator, &greedy, opts);
  controller.BeginQuery(nullptr, nullptr, UserConstraint(), 2.0, 2);

  FragmentBoundary boundary;
  boundary.index = 0;
  boundary.current_workers = 2;
  boundary.elapsed_seconds = 1.0;
  boundary.cuts_remaining = 3;
  EXPECT_EQ(controller.Decide(boundary), 2u);  // proposal rejected
  ASSERT_EQ(controller.decisions().size(), 1u);
  const auto d = controller.decisions()[0];
  EXPECT_TRUE(d.declined);
  EXPECT_FALSE(d.resized);
  EXPECT_EQ(d.proposed, 8u);
  EXPECT_NE(d.reason.find("net-negative"), std::string::npos) << d.reason;
  EXPECT_EQ(controller.resizes_declined(), 1u);
}

TEST_F(ElasticTest, ControllerRefusesGrowthUnderQueuePressure) {
  HardwareCalibration hw;
  InstanceType node = PricingCatalog::Default().default_node();
  CostEstimator estimator(&hw, &node);
  FixedProposalPolicy greedy(8);
  ElasticControllerOptions opts;
  opts.max_workers = 8;
  opts.max_queue_pressure = 1.0;
  ElasticController controller(&estimator, &greedy, opts);
  controller.BeginQuery(nullptr, nullptr, UserConstraint(), 2.0, 2);
  controller.SetQueuePressure(3.0);  // 3 queued queries per slot

  FragmentBoundary boundary;
  boundary.index = 0;
  boundary.current_workers = 2;
  boundary.elapsed_seconds = 1.0;
  boundary.cuts_remaining = 3;
  EXPECT_EQ(controller.Decide(boundary), 2u);
  ASSERT_EQ(controller.decisions().size(), 1u);
  EXPECT_NE(controller.decisions()[0].reason.find("queue pressure"),
            std::string::npos);
}

TEST_F(ElasticTest, ControllerAcceptsDollarSavingShrink) {
  HardwareCalibration hw;
  InstanceType node = PricingCatalog::Default().default_node();
  CostEstimator estimator(&hw, &node);
  FixedProposalPolicy frugal(1);
  ElasticController controller(&estimator, &frugal);
  controller.BeginQuery(nullptr, nullptr, UserConstraint(), 2.0, 4);

  FragmentBoundary boundary;
  boundary.index = 0;
  boundary.current_workers = 4;
  boundary.elapsed_seconds = 1.0;
  boundary.cuts_remaining = 2;
  EXPECT_EQ(controller.Decide(boundary), 1u);
  ASSERT_EQ(controller.decisions().size(), 1u);
  const auto d = controller.decisions()[0];
  EXPECT_TRUE(d.resized);
  EXPECT_LT(d.dollar_delta, 0.0);  // shrinking saves dollars
}

// ----------------------------------------------------------- facade wiring

TEST_F(ElasticTest, FacadeElasticRunBillsActualWorkerSeconds) {
  DatabaseOptions opts;
  opts.enable_calibration = false;
  opts.enable_elastic = true;
  Database db(opts);
  db.meta()->RegisterTable(*plain_->meta()->GetTable("orders"));
  db.meta()->RegisterTable(*plain_->meta()->GetTable("customer"));
  db.meta()->AnalyzeAll();

  const std::string sql =
      "SELECT cust, count(*) AS c, sum(id) AS s FROM orders GROUP BY cust";
  auto reference = plain_->ExecuteSql(sql, UserConstraint());
  ASSERT_TRUE(reference.ok());
  auto elastic = db.ExecuteSql(sql, UserConstraint().WithWorkers(3));
  ASSERT_TRUE(elastic.ok()) << elastic.status().ToString();
  EXPECT_EQ(elastic->workers, 3u);
  std::string why;
  EXPECT_TRUE(ChunksBitIdentical(reference->result.chunk,
                                 elastic->result.chunk, &why))
      << why;
  // The run was metered and billed at the node price.
  EXPECT_GT(elastic->usage.wall_seconds, 0.0);
  EXPECT_GT(elastic->usage.worker_seconds, 0.0);
  const Dollars price = db.node_type().price_per_second();
  EXPECT_DOUBLE_EQ(elastic->billed_dollars,
                   elastic->usage.worker_seconds * price);
  // One boundary decision was recorded (held or resized) and the bill
  // landed on the facade's meter under the elastic label.
  EXPECT_GE(elastic->elastic.size(), 1u);
  BillingMeter bill = db.billing_snapshot();
  EXPECT_GE(bill.total(), elastic->billed_dollars * (1.0 - 1e-9));
  EXPECT_GT(bill.TotalForPrefix("query:elastic"), 0.0);

  // The session ledger settles to the actual bill, not the estimate.
  Session session(&db);
  auto via_session = session.ExecuteSql(sql, UserConstraint().WithWorkers(3));
  ASSERT_TRUE(via_session.ok());
  EXPECT_GT(via_session->billed_dollars, 0.0);
  // Settle replaces the reservation with the actual bill (spent = est +
  // (actual - est)), so equality holds up to one rounding step.
  EXPECT_NEAR(session.spent(), via_session->billed_dollars,
              via_session->billed_dollars * 1e-9);
}

TEST_F(ElasticTest, SimulatorElasticParityIsComparable) {
  const std::string sql =
      "SELECT cust, count(*) AS c, sum(id) AS s FROM orders GROUP BY cust";
  auto prepared = plain_->Prepare(sql, UserConstraint());
  ASSERT_TRUE(prepared.ok());

  // Real run with no policy pressure (static width) vs the simulator
  // under the same static policy: both must hold their width, and both
  // must produce a positive machine-seconds bill.
  ShardedEngine engine(4);
  ASSERT_TRUE(engine.Execute(prepared->planned.plan.get()).ok());
  StaticPolicy static_policy;
  ElasticParity parity =
      CheckElasticParity(*prepared, *plain_->simulator(), &static_policy,
                         UserConstraint(), engine.last_usage());
  EXPECT_EQ(parity.real_resizes, 0u);
  EXPECT_EQ(parity.simulated_resizes, 0);
  EXPECT_TRUE(parity.resize_direction_agrees);
  EXPECT_GT(parity.simulated_machine_seconds, 0.0);
  EXPECT_GT(parity.real_machine_seconds, 0.0);
  EXPECT_GT(parity.machine_seconds_ratio, 0.0);
}

}  // namespace
}  // namespace costdb
