#include <gtest/gtest.h>

#include "optimizer/optimizer.h"
#include "plan/pipeline.h"

namespace costdb {
namespace {

class PlanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto fact = std::make_shared<Table>(
        "fact", std::vector<ColumnDef>{{"id", LogicalType::kInt64},
                                       {"d1", LogicalType::kInt64},
                                       {"d2", LogicalType::kInt64},
                                       {"v", LogicalType::kDouble}});
    DataChunk fc({LogicalType::kInt64, LogicalType::kInt64,
                  LogicalType::kInt64, LogicalType::kDouble});
    for (int64_t i = 0; i < 10000; ++i) {
      fc.AppendRow({Value(i), Value(i % 100), Value(i % 50),
                    Value(static_cast<double>(i))});
    }
    fact->Append(fc);
    meta_.RegisterTable(fact);
    RegisterDim("dim1", 100);
    RegisterDim("dim2", 50);
    meta_.AnalyzeAll();
  }

  void RegisterDim(const std::string& name, int64_t rows) {
    auto t = std::make_shared<Table>(
        name, std::vector<ColumnDef>{{"id", LogicalType::kInt64},
                                     {"attr", LogicalType::kInt64}});
    DataChunk c({LogicalType::kInt64, LogicalType::kInt64});
    for (int64_t i = 0; i < rows; ++i) c.AppendRow({Value(i), Value(i % 7)});
    t->Append(c);
    meta_.RegisterTable(t);
  }

  PhysicalPlanPtr Plan(const std::string& sql) {
    Optimizer opt(&meta_);
    auto plan = opt.OptimizeSql(sql);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    return plan.ok() ? *plan : nullptr;
  }

  MetadataService meta_;
};

/// Collect nodes of a kind in the plan tree.
void Collect(const PhysicalPlan* p, PhysicalPlan::Kind kind,
             std::vector<const PhysicalPlan*>* out) {
  if (p->kind == kind) out->push_back(p);
  for (const auto& c : p->children) Collect(c.get(), kind, out);
}

TEST_F(PlanTest, FilterPushedIntoScan) {
  auto plan = Plan("SELECT v FROM fact WHERE id < 100 AND v > 5.0");
  std::vector<const PhysicalPlan*> scans;
  Collect(plan.get(), PhysicalPlan::Kind::kTableScan, &scans);
  ASSERT_EQ(scans.size(), 1u);
  EXPECT_EQ(scans[0]->scan_filters.size(), 2u);
  std::vector<const PhysicalPlan*> filters;
  Collect(plan.get(), PhysicalPlan::Kind::kFilter, &filters);
  EXPECT_TRUE(filters.empty());  // fully pushed down
}

TEST_F(PlanTest, ColumnPruningOnScan) {
  auto plan = Plan("SELECT v FROM fact WHERE id < 100");
  std::vector<const PhysicalPlan*> scans;
  Collect(plan.get(), PhysicalPlan::Kind::kTableScan, &scans);
  ASSERT_EQ(scans.size(), 1u);
  // Only id and v are needed, not d1/d2.
  EXPECT_EQ(scans[0]->scan_column_indices.size(), 2u);
}

TEST_F(PlanTest, JoinOrderPutsSmallerRelationOnBuildSide) {
  auto plan = Plan(
      "SELECT count(*) FROM fact f, dim1 a WHERE f.d1 = a.id");
  std::vector<const PhysicalPlan*> joins;
  Collect(plan.get(), PhysicalPlan::Kind::kHashJoin, &joins);
  ASSERT_EQ(joins.size(), 1u);
  // Build side (child 1, below its exchange) should be the 100-row dim.
  const PhysicalPlan* build = joins[0]->children[1].get();
  while (build->kind == PhysicalPlan::Kind::kExchange) {
    build = build->children[0].get();
  }
  EXPECT_EQ(build->kind, PhysicalPlan::Kind::kTableScan);
  EXPECT_EQ(build->alias, "a");
}

TEST_F(PlanTest, SmallBuildSideIsBroadcast) {
  auto plan = Plan("SELECT count(*) FROM fact f, dim1 a WHERE f.d1 = a.id");
  std::vector<const PhysicalPlan*> exchanges;
  Collect(plan.get(), PhysicalPlan::Kind::kExchange, &exchanges);
  bool has_broadcast = false;
  for (const auto* e : exchanges) {
    if (e->exchange_kind == ExchangeKind::kBroadcast) has_broadcast = true;
  }
  EXPECT_TRUE(has_broadcast);
}

TEST_F(PlanTest, GroupByGetsShuffleExchange) {
  auto plan = Plan("SELECT d1, count(*) FROM fact GROUP BY d1");
  std::vector<const PhysicalPlan*> exchanges;
  Collect(plan.get(), PhysicalPlan::Kind::kExchange, &exchanges);
  bool has_shuffle = false;
  for (const auto* e : exchanges) {
    if (e->exchange_kind == ExchangeKind::kShuffle) has_shuffle = true;
  }
  EXPECT_TRUE(has_shuffle);
}

TEST_F(PlanTest, EstimatesPropagate) {
  auto plan = Plan("SELECT count(*) FROM fact WHERE id < 5000");
  // Root estimate: a global aggregate -> 1 row.
  EXPECT_NEAR(plan->est_rows, 1.0, 0.5);
  std::vector<const PhysicalPlan*> scans;
  Collect(plan.get(), PhysicalPlan::Kind::kTableScan, &scans);
  ASSERT_EQ(scans.size(), 1u);
  EXPECT_NEAR(scans[0]->est_rows, 5000.0, 500.0);
  EXPECT_GT(scans[0]->est_scanned_bytes, 0.0);
}

TEST_F(PlanTest, PipelineDecompositionSingleScan) {
  auto plan = Plan("SELECT v FROM fact WHERE id < 10");
  PipelineGraph graph = BuildPipelines(plan.get());
  ASSERT_EQ(graph.pipelines.size(), 1u);
  EXPECT_EQ(graph.pipelines[0].sink, nullptr);
  EXPECT_EQ(graph.pipelines[0].source->kind, PhysicalPlan::Kind::kTableScan);
}

TEST_F(PlanTest, PipelineDecompositionAggregate) {
  auto plan = Plan("SELECT d1, count(*) FROM fact GROUP BY d1");
  PipelineGraph graph = BuildPipelines(plan.get());
  // Two-phase aggregation: scan -> partial-agg sink, partial -> final-agg
  // sink, final -> result.
  ASSERT_EQ(graph.pipelines.size(), 3u);
  EXPECT_EQ(graph.pipelines[0].sink->kind,
            PhysicalPlan::Kind::kHashAggregate);
  EXPECT_EQ(graph.pipelines[1].sink->kind,
            PhysicalPlan::Kind::kHashAggregate);
  EXPECT_TRUE(graph.pipelines[1].source_is_breaker);
  EXPECT_TRUE(graph.pipelines[2].source_is_breaker);
  ASSERT_EQ(graph.pipelines[1].dependencies.size(), 1u);
  EXPECT_EQ(graph.pipelines[1].dependencies[0], graph.pipelines[0].id);
}

TEST_F(PlanTest, PipelineDecompositionTwoJoins) {
  auto plan = Plan(
      "SELECT count(*) FROM fact f, dim1 a, dim2 b "
      "WHERE f.d1 = a.id AND f.d2 = b.id");
  PipelineGraph graph = BuildPipelines(plan.get());
  // Two build pipelines + probe/partial-agg feeder + final-agg pipeline +
  // result pipeline.
  ASSERT_EQ(graph.pipelines.size(), 5u);
  int builds = 0;
  for (const auto& p : graph.pipelines) {
    if (p.sink_is_build_side) ++builds;
  }
  EXPECT_EQ(builds, 2);
  // The probe pipeline (the one streaming through both joins) must depend
  // on both builds.
  const Pipeline* probe = nullptr;
  for (const auto& p : graph.pipelines) {
    int joins = 0;
    for (const auto* op : p.operators) {
      if (op->kind == PhysicalPlan::Kind::kHashJoin) ++joins;
    }
    if (joins == 2) probe = &p;
  }
  ASSERT_NE(probe, nullptr);
  EXPECT_EQ(probe->dependencies.size(), 2u);
}

TEST_F(PlanTest, DependenciesPrecedeInTopoOrder) {
  auto plan = Plan(
      "SELECT a.attr, sum(f.v) FROM fact f, dim1 a WHERE f.d1 = a.id "
      "GROUP BY a.attr ORDER BY a.attr");
  PipelineGraph graph = BuildPipelines(plan.get());
  std::map<int, size_t> position;
  for (size_t i = 0; i < graph.pipelines.size(); ++i) {
    position[graph.pipelines[i].id] = i;
  }
  for (size_t i = 0; i < graph.pipelines.size(); ++i) {
    for (int dep : graph.pipelines[i].dependencies) {
      EXPECT_LT(position[dep], i);
    }
  }
}

TEST_F(PlanTest, ExplainRendering) {
  auto plan = Plan("SELECT d1, count(*) FROM fact GROUP BY d1");
  std::string s = plan->ToString();
  EXPECT_NE(s.find("HashAggregate"), std::string::npos);
  EXPECT_NE(s.find("TableScan"), std::string::npos);
  PipelineGraph graph = BuildPipelines(plan.get());
  EXPECT_NE(graph.ToString().find("pipeline"), std::string::npos);
}

}  // namespace
}  // namespace costdb
