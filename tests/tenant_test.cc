#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <thread>

#include "admission_testing.h"
#include "cloud/pricing.h"
#include "service/session.h"
#include "workload/ssb.h"

namespace costdb {
namespace {

// ===================================================================
// Fair-share scheduling on the raw controller. Every test pins
// max_concurrent = 1 (or gates runs on a future) so the admission order
// is a pure function of the submissions — schedule-exact, no sleeps.
// ===================================================================

AdmissionController::Submission Instant(const std::string& tenant,
                                        Seconds est_latency,
                                        const std::string& query_class = "") {
  AdmissionController::Submission sub;
  sub.tenant = tenant;
  sub.query_class = query_class;
  sub.est_latency = est_latency;
  sub.run = [] {};
  return sub;
}

// Admission order by tenant, with anonymous-tenant entries (the slot
// blocker) dropped.
std::vector<std::string> LoggedTenants(const AdmissionController& controller) {
  std::vector<std::string> out;
  for (const auto& e : controller.admission_log()) {
    if (!e.tenant.empty()) out.push_back(e.tenant);
  }
  return out;
}

TEST(TenantFairShareTest, FairShareRoundRobinAcrossEqualTenants) {
  AdmissionOptions opts;
  opts.max_concurrent = 1;
  opts.record_admissions = true;
  AdmissionController controller(opts);
  SlotBlocker blocker(&controller);

  std::vector<AdmissionController::TicketPtr> tickets;
  for (int i = 0; i < 3; ++i) tickets.push_back(controller.Submit(Instant("A", 1.0)));
  for (int i = 0; i < 3; ++i) tickets.push_back(controller.Submit(Instant("B", 1.0)));
  blocker.Release();
  for (const auto& t : tickets) controller.Await(t);

  // Tenant B submitted after all of A's queries, yet the deficit counter
  // interleaves them strictly: A consumed the slot once, so B's virtual
  // work is lower until B consumes it too.
  EXPECT_EQ(LoggedTenants(controller),
            (std::vector<std::string>{"A", "B", "A", "B", "A", "B"}));
}

TEST(TenantFairShareTest, WeightedTenantsShareProportionally) {
  AdmissionOptions opts;
  opts.max_concurrent = 1;
  opts.record_admissions = true;
  opts.tenant_quotas["t1"].weight = 1.0;
  // A power-of-two weight keeps the virtual-work steps exact in binary,
  // so the expected admission schedule has no rounding slack.
  opts.tenant_quotas["t2"].weight = 2.0;
  AdmissionController controller(opts);
  SlotBlocker blocker(&controller);

  std::vector<AdmissionController::TicketPtr> tickets;
  for (int i = 0; i < 3; ++i) tickets.push_back(controller.Submit(Instant("t1", 1.0)));
  for (int i = 0; i < 6; ++i) tickets.push_back(controller.Submit(Instant("t2", 1.0)));
  blocker.Release();
  for (const auto& t : tickets) controller.Await(t);

  // Weight 2 admits 2x the work while both queues are non-empty: the
  // admission stream is t1,(t2 x2) repeating.
  const auto order = LoggedTenants(controller);
  ASSERT_EQ(order.size(), 9u);
  for (size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(order[i], i % 3 == 0 ? "t1" : "t2") << "position " << i;
  }
  auto stats = controller.tenant_stats();
  EXPECT_DOUBLE_EQ(stats["t1"].admitted_work, 3.0);
  EXPECT_DOUBLE_EQ(stats["t2"].admitted_work, 6.0);
  EXPECT_DOUBLE_EQ(stats["t2"].weight, 2.0);
}

TEST(TenantFairShareTest, LatecomerTenantDoesNotMonopolize) {
  AdmissionOptions opts;
  opts.max_concurrent = 1;
  opts.record_admissions = true;
  AdmissionController controller(opts);

  std::promise<void> gate;
  auto gate_future = std::shared_future<void>(gate.get_future());
  AdmissionController::Submission first = Instant("A", 1.0);
  first.run = [gate_future] { gate_future.wait(); };
  auto a1 = controller.Submit(std::move(first));
  while (controller.state(a1) !=
         AdmissionController::Ticket::State::kRunning) {
    std::this_thread::yield();
  }
  // A has consumed 1.0 of virtual work; C joins now with an empty
  // counter. The join rule aligns C to A's virtual time instead of
  // letting C's zero counter win every pick until it "catches up".
  std::vector<AdmissionController::TicketPtr> tickets;
  tickets.push_back(controller.Submit(Instant("A", 1.0)));
  tickets.push_back(controller.Submit(Instant("A", 1.0)));
  for (int i = 0; i < 3; ++i) tickets.push_back(controller.Submit(Instant("C", 1.0)));
  gate.set_value();
  for (const auto& t : tickets) controller.Await(t);
  controller.Await(a1);

  // Aligned, the tenants alternate from parity (ties go to the earlier
  // submission): A1, A2, C1, A3, C2, C3. A zero-initialized C would have
  // jumped the whole of A's queue: A1, C1, A2, C2, A3, C3.
  const auto order = LoggedTenants(controller);
  EXPECT_EQ(order,
            (std::vector<std::string>{"A", "A", "C", "A", "C", "C"}));
}

TEST(TenantFairShareTest, PerTenantConcurrencyQuotaHolds) {
  AdmissionOptions opts;
  opts.max_concurrent = 4;
  opts.tenant_quotas["small"].max_concurrent = 1;
  AdmissionController controller(opts);

  std::promise<void> gate;
  auto gate_future = std::shared_future<void>(gate.get_future());
  std::vector<AdmissionController::TicketPtr> tickets;
  for (int i = 0; i < 3; ++i) {
    AdmissionController::Submission sub = Instant("small", 1.0);
    sub.run = [gate_future] { gate_future.wait(); };
    tickets.push_back(controller.Submit(std::move(sub)));
  }
  // One admitted, two held by the tenant quota — despite 3 free global
  // slots.
  while (controller.tenant_stats()["small"].running < 1) {
    std::this_thread::yield();
  }
  for (int spin = 0; spin < 200; ++spin) {
    auto stats = controller.stats();
    EXPECT_EQ(stats.started, 1u);
    std::this_thread::yield();
  }
  EXPECT_EQ(controller.queued(), 2u);
  gate.set_value();
  for (const auto& t : tickets) controller.Await(t);
  EXPECT_EQ(controller.tenant_stats()["small"].completed, 3u);
}

TEST(TenantFairShareTest, PerTenantMemoryQuotaSerializesBigQueries) {
  AdmissionOptions opts;
  opts.max_concurrent = 4;
  opts.tenant_quotas["mem"].max_estimated_memory_bytes = 100.0;
  AdmissionController controller(opts);

  std::promise<void> gate;
  auto gate_future = std::shared_future<void>(gate.get_future());
  std::vector<AdmissionController::TicketPtr> tickets;
  for (int i = 0; i < 2; ++i) {
    AdmissionController::Submission sub = Instant("mem", 1.0);
    sub.est_memory_bytes = 80.0;  // 80 + 80 > 100: never together
    sub.run = [gate_future] { gate_future.wait(); };
    tickets.push_back(controller.Submit(std::move(sub)));
  }
  while (controller.tenant_stats()["mem"].running < 1) {
    std::this_thread::yield();
  }
  for (int spin = 0; spin < 200; ++spin) {
    EXPECT_EQ(controller.stats().started, 1u);
    std::this_thread::yield();
  }
  gate.set_value();
  for (const auto& t : tickets) controller.Await(t);

  // A single query bigger than the whole tenant cap still runs — alone —
  // instead of queueing forever.
  AdmissionController::Submission oversized = Instant("mem", 1.0);
  oversized.est_memory_bytes = 500.0;
  auto big = controller.Submit(std::move(oversized));
  controller.Await(big);
  EXPECT_EQ(controller.state(big), AdmissionController::Ticket::State::kDone);
}

TEST(TenantFairShareTest, PerClassStarvationGuardPreemptsCostOrder) {
  VirtualClock clock;
  AdmissionOptions opts;
  opts.max_concurrent = 1;
  opts.max_queue_wait = 10.0;
  opts.clock = clock.AsClock();
  opts.record_admissions = true;
  AdmissionController controller(opts);
  SlotBlocker blocker(&controller);

  // The batch query ages past the guard; the interactive flood does not.
  auto batch = controller.Submit(Instant("T", 5.0, "batch"));
  clock.Advance(6.0);
  auto cheap1 = controller.Submit(Instant("T", 0.1, "interactive"));
  auto cheap2 = controller.Submit(Instant("T", 0.1, "interactive"));
  clock.Advance(5.0);  // batch waited 11s > 10s; interactive 5s
  controller.Poke();   // idle-worker re-evaluation after a clock jump
  blocker.Release();
  controller.Await(batch);
  controller.Await(cheap1);
  controller.Await(cheap2);

  // Cost order alone would run both 0.1s queries first; the per-class
  // guard admits the overdue batch query ahead of them.
  const auto log = controller.admission_log();
  ASSERT_EQ(log.size(), 4u);
  EXPECT_EQ(log[1].query_class, "batch");
  EXPECT_EQ(log[2].query_class, "interactive");
  EXPECT_EQ(log[3].query_class, "interactive");
}

TEST(TenantFairShareTest, StarvationGuardSkipsQuotaSaturatedTenant) {
  VirtualClock clock;
  AdmissionOptions opts;
  opts.max_concurrent = 2;
  opts.max_queue_wait = 10.0;
  opts.clock = clock.AsClock();
  opts.tenant_quotas["X"].max_concurrent = 1;
  AdmissionController controller(opts);

  std::promise<void> gate;
  auto gate_future = std::shared_future<void>(gate.get_future());
  AdmissionController::Submission x1 = Instant("X", 0.1, "c");
  x1.run = [gate_future] { gate_future.wait(); };
  auto tx1 = controller.Submit(std::move(x1));
  while (controller.tenant_stats()["X"].running < 1) {
    std::this_thread::yield();
  }
  auto tx2 = controller.Submit(Instant("X", 0.1, "c"));
  clock.Advance(11.0);  // X2 is overdue — but X is saturated, not starved
  auto ty1 = controller.Submit(Instant("Y", 1.0, "d"));

  // The guard must not hold the free slot for X2 (its own tenant quota
  // blocks it); Y runs through.
  controller.Await(ty1);
  EXPECT_EQ(controller.state(ty1), AdmissionController::Ticket::State::kDone);
  EXPECT_EQ(controller.state(tx2),
            AdmissionController::Ticket::State::kQueued);
  gate.set_value();
  controller.Await(tx1);
  controller.Await(tx2);
  EXPECT_EQ(controller.tenant_stats()["X"].completed, 2u);
}

TEST(TenantFairShareTest, OverdueMemoryBlockedQueryHoldsTheDoor) {
  VirtualClock clock;
  AdmissionOptions opts;
  opts.max_concurrent = 2;
  opts.max_estimated_memory_bytes = 100.0;
  opts.max_queue_wait = 10.0;
  opts.clock = clock.AsClock();
  opts.record_admissions = true;
  AdmissionController controller(opts);

  std::promise<void> gate;
  auto gate_future = std::shared_future<void>(gate.get_future());
  AdmissionController::Submission g1 = Instant("A", 0.1, "big");
  g1.est_memory_bytes = 80.0;
  g1.run = [gate_future] { gate_future.wait(); };
  auto tg1 = controller.Submit(std::move(g1));
  while (controller.stats().started < 1) std::this_thread::yield();

  AdmissionController::Submission q2 = Instant("A", 1.0, "big");
  q2.est_memory_bytes = 50.0;  // 80 + 50 > 100: globally blocked
  auto tq2 = controller.Submit(std::move(q2));
  clock.Advance(11.0);  // q2 overdue, blocked by the global memory cap
  AdmissionController::Submission q3 = Instant("A", 0.1, "small");
  q3.est_memory_bytes = 10.0;  // would fit — but must not jump the door
  auto tq3 = controller.Submit(std::move(q3));
  controller.Poke();

  // Admitting q3 would keep the pool full and starve q2 forever; the
  // guard holds the free slot until the pool drains.
  for (int spin = 0; spin < 200; ++spin) {
    EXPECT_EQ(controller.stats().started, 1u);
    std::this_thread::yield();
  }
  gate.set_value();
  controller.Await(tg1);
  controller.Await(tq2);
  controller.Await(tq3);
  const auto log = controller.admission_log();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[1].query_class, "big") << "overdue query admitted first";
  EXPECT_EQ(log[2].query_class, "small");
}

TEST(TenantFairShareTest, SetTenantQuotaAppliesToQueuedWork) {
  AdmissionOptions opts;
  opts.max_concurrent = 2;
  opts.tenant_quotas["q"].max_concurrent = 1;
  AdmissionController controller(opts);

  std::promise<void> gate;
  auto gate_future = std::shared_future<void>(gate.get_future());
  std::vector<AdmissionController::TicketPtr> tickets;
  for (int i = 0; i < 2; ++i) {
    AdmissionController::Submission sub = Instant("q", 1.0);
    sub.run = [gate_future] { gate_future.wait(); };
    tickets.push_back(controller.Submit(std::move(sub)));
  }
  while (controller.tenant_stats()["q"].running < 1) {
    std::this_thread::yield();
  }
  EXPECT_EQ(controller.queued(), 1u);
  // Raising the quota mid-run admits the queued query immediately.
  TenantQuota raised;
  raised.max_concurrent = 2;
  controller.SetTenantQuota("q", raised);
  while (controller.tenant_stats()["q"].running < 2) {
    std::this_thread::yield();
  }
  gate.set_value();
  for (const auto& t : tickets) controller.Await(t);
  EXPECT_EQ(controller.tenant_stats()["q"].completed, 2u);
}

// ===================================================================
// Result cache + tenant billing through the full Session/Database
// stack.
// ===================================================================

DatabaseOptions TenantDbOptions() {
  DatabaseOptions opts;
  opts.exec_threads = 4;
  opts.batch_threads = 4;
  opts.enable_calibration = false;
  opts.enable_result_cache = true;
  return opts;
}

std::unique_ptr<Database> MakeSsbDatabase(DatabaseOptions opts) {
  auto db = std::make_unique<Database>(opts);
  SsbOptions data;
  data.scale = 0.01;
  data.row_group_size = 256;
  LoadSsb(db->meta(), data);
  return db;
}

int64_t SingleInt(const QueryResult& r) {
  EXPECT_EQ(r.chunk.num_rows(), 1u);
  return r.chunk.column(0).GetInt(0);
}

TEST(ResultCacheTest, RepeatedPreparedStatementCostsOneExecution) {
  auto db = MakeSsbDatabase(TenantDbOptions());
  Session session(db.get());
  auto stmt = session.Prepare(
      "SELECT count(*) AS n FROM lineorder WHERE lo_quantity < ?");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();

  auto first = session.Execute(*stmt, {Value(int64_t{25})});
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_FALSE(first->result_cache_hit);
  auto second = session.Execute(*stmt, {Value(int64_t{25})});
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->result_cache_hit);
  EXPECT_EQ(SingleInt(first->result), SingleInt(second->result));

  // A different parameter vector is a different result — must miss.
  auto other = session.Execute(*stmt, {Value(int64_t{30})});
  ASSERT_TRUE(other.ok());
  EXPECT_FALSE(other->result_cache_hit);
  EXPECT_NE(SingleInt(other->result), SingleInt(first->result));

  auto stats = db->result_cache_stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.entries, 2u);
}

TEST(ResultCacheTest, ByteBudgetEvictsLeastRecentlyUsed) {
  DatabaseOptions opts = TenantDbOptions();
  // Each cached result here is one int64 row = 8 payload bytes; a 20-byte
  // budget holds two entries, and the entry cap stays out of the way.
  opts.result_cache_max_entries = 256;
  opts.result_cache_max_bytes = 20;
  auto db = MakeSsbDatabase(opts);
  Session session(db.get());
  auto stmt = session.Prepare(
      "SELECT count(*) AS n FROM lineorder WHERE lo_quantity < ?");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();

  auto run = [&](int64_t q) {
    auto r = session.Execute(*stmt, {Value(q)});
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r->result_cache_hit;
  };

  EXPECT_FALSE(run(10));  // cache: {10}, 8 bytes
  EXPECT_FALSE(run(11));  // cache: {10, 11}, 16 bytes
  auto stats = db->result_cache_stats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.bytes, 16u);
  EXPECT_EQ(stats.evictions, 0u);

  // Third entry pushes past the 20-byte budget: the least-recently-used
  // (10) is evicted, the newer two stay.
  EXPECT_FALSE(run(12));
  stats = db->result_cache_stats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.bytes, 16u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_FALSE(run(10));  // evicted — a miss that re-executes (evicts 11)
  EXPECT_TRUE(run(12));   // survived as the most recent at the time

  // A hit refreshes recency: touch 12, then insert a new entry — the
  // eviction must take 10, not the just-touched 12.
  EXPECT_FALSE(run(13));
  EXPECT_TRUE(run(12));
  EXPECT_FALSE(run(14));
  EXPECT_TRUE(run(12));
  stats = db->result_cache_stats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_LE(stats.bytes, opts.result_cache_max_bytes);

  // ClearResultCache resets the byte ledger with the entries.
  db->ClearResultCache();
  stats = db->result_cache_stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes, 0u);
}

TEST(ResultCacheTest, LayoutVersionBumpInvalidates) {
  auto db = MakeSsbDatabase(TenantDbOptions());
  Session session(db.get());
  const std::string sql = "SELECT count(*) AS n FROM supplier";
  auto first = session.ExecuteSql(sql);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  const int64_t before = SingleInt(first->result);

  // Physically change the scanned table: append one (copied) row.
  auto table = db->meta()->GetTable("supplier");
  ASSERT_TRUE(table.ok());
  DataChunk all = (*table)->Scan();
  DataChunk one(all.Types());
  one.AppendRowFrom(all, 0);
  (*table)->Append(one);

  auto second = session.ExecuteSql(sql);
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second->result_cache_hit)
      << "stale rows served after a layout change";
  EXPECT_EQ(SingleInt(second->result), before + 1);
  EXPECT_GE(db->result_cache_stats().invalidations, 1u);
}

TEST(ResultCacheTest, CalibrationVersionBumpInvalidates) {
  DatabaseOptions opts = TenantDbOptions();
  opts.enable_calibration = true;  // the bump under test
  auto db = MakeSsbDatabase(opts);
  Session session(db.get());
  const std::string sql = FindQuery("Q3").sql;
  const int version_before = db->calibration_version();
  auto first = session.ExecuteSql(sql);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_GT(db->calibration_version(), version_before)
      << "test premise: the warm-up run must move the calibration";
  auto second = session.ExecuteSql(sql);
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second->result_cache_hit)
      << "rows produced under a stale calibration were served";
  EXPECT_GE(db->result_cache_stats().invalidations, 1u);
  EXPECT_EQ(db->result_cache_stats().hits, 0u);
}

TEST(ResultCacheTest, SingleFlightUnder16ConcurrentIdenticalSubmits) {
  auto db = MakeSsbDatabase(TenantDbOptions());
  SessionOptions session_opts;
  session_opts.tenant_id = "hot";
  Session session(db.get(), session_opts);
  auto stmt = session.Prepare(
      "SELECT count(*) AS n FROM lineorder WHERE lo_quantity < ?");
  ASSERT_TRUE(stmt.ok());

  std::vector<QueryHandlePtr> handles;
  for (int i = 0; i < 16; ++i) {
    auto handle = session.Submit(*stmt, {Value(int64_t{25})});
    ASSERT_TRUE(handle.ok()) << handle.status().ToString();
    handles.push_back(std::move(*handle));
  }
  int64_t expected = -1;
  for (auto& handle : handles) {
    auto taken = handle->Take();
    ASSERT_TRUE(taken.ok()) << taken.status().ToString();
    const int64_t n = SingleInt(taken->result);
    if (expected < 0) expected = n;
    EXPECT_EQ(n, expected);
  }
  // The proof of single-flight: one leader executed, 15 were served.
  auto stats = db->result_cache_stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 15u);
  auto bill = db->tenant_billing()["hot"];
  EXPECT_EQ(bill.runs, 16u);
  EXPECT_EQ(bill.result_cache_hits, 15u);
}

TEST(ResultCacheTest, CacheHitBilledAtCacheRate) {
  DatabaseOptions opts = TenantDbOptions();
  opts.pricing.result_cache_hit_factor = 0.25;
  auto db = MakeSsbDatabase(opts);
  Session session(db.get());

  const std::string sql = FindQuery("Q3").sql;
  auto first = session.ExecuteSql(sql);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  const Dollars spent_after_run = session.spent();

  auto second = session.ExecuteSql(sql);
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(second->result_cache_hit);
  // The hit reserved the plan estimate like any run, then settled to the
  // cache rate: the marginal spend is exactly 25% of the reservation.
  const Dollars reserved = second->plan->estimate.cost;
  ASSERT_GT(reserved, 0.0);
  EXPECT_NEAR(second->billed_dollars, 0.25 * reserved, 1e-12);
  EXPECT_NEAR(session.spent() - spent_after_run, 0.25 * reserved, 1e-12);
}

// ===================================================================
// Ledger properties (run under TSAN in CI).
// ===================================================================

TEST(TenantLedgerTest, ZeroBudgetRejectsBeforeAdmission) {
  DatabaseOptions opts = TenantDbOptions();
  auto db = MakeSsbDatabase(opts);
  db->meta()->SetVirtualScale("lineorder", 1e5);
  SessionOptions broke;
  broke.budget = 0.0;
  Session session(db.get(), broke);
  auto refused = session.Submit(FindQuery("Q3").sql);
  ASSERT_FALSE(refused.ok());
  EXPECT_TRUE(refused.status().IsResourceExhausted())
      << refused.status().ToString();
  EXPECT_EQ(session.spent(), 0.0);
  EXPECT_EQ(db->admission()->stats().submitted, 0u)
      << "a budget-rejected query must never reach the admission queue";
}

TEST(TenantLedgerTest, CancelReleasesTheFullReservation) {
  DatabaseOptions opts = TenantDbOptions();
  opts.admission.max_concurrent = 1;
  auto db = MakeSsbDatabase(opts);
  db->meta()->SetVirtualScale("lineorder", 1e5);
  Session session(db.get());
  SlotBlocker blocker(db.get());
  auto handle = session.Submit(FindQuery("Q3").sql);
  ASSERT_TRUE(handle.ok());
  ASSERT_GT(session.spent(), 0.0) << "submission must reserve its estimate";
  ASSERT_TRUE((*handle)->Cancel());
  EXPECT_TRUE((*handle)->Wait().IsCancelled());
  EXPECT_EQ(session.spent(), 0.0)
      << "a cancelled query must release its whole reservation";
}

TEST(TenantLedgerTest, ConcurrentCancelsNeverDoubleRelease) {
  DatabaseOptions opts = TenantDbOptions();
  opts.admission.max_concurrent = 1;
  auto db = MakeSsbDatabase(opts);
  db->meta()->SetVirtualScale("lineorder", 1e5);
  Session session(db.get());

  // A settled baseline spend, so a double-release would drive spent()
  // below it instead of being masked by the zero clamp.
  auto warm = session.ExecuteSql("SELECT count(*) AS n FROM supplier");
  ASSERT_TRUE(warm.ok());
  const Dollars baseline = session.spent();
  ASSERT_GT(baseline, 0.0);

  SlotBlocker blocker(db.get());
  std::vector<QueryHandlePtr> handles;
  for (int i = 0; i < 6; ++i) {
    auto handle = session.Submit(FindQuery("Q3").sql);
    ASSERT_TRUE(handle.ok());
    handles.push_back(std::move(*handle));
  }
  ASSERT_GT(session.spent(), baseline);

  // Four threads race to cancel every handle; each reservation must be
  // released exactly once.
  std::atomic<int> cancelled{0};
  std::vector<std::thread> racers;
  for (int t = 0; t < 4; ++t) {
    racers.emplace_back([&] {
      for (auto& handle : handles) {
        if (handle->Cancel()) ++cancelled;
      }
    });
  }
  for (auto& racer : racers) racer.join();
  for (auto& handle : handles) {
    EXPECT_TRUE(handle->Wait().IsCancelled());
  }
  EXPECT_EQ(cancelled.load(), 6);
  EXPECT_NEAR(session.spent(), baseline, 1e-12)
      << "refunds were lost or applied twice";
}

// ===================================================================
// Tiered volume pricing + cross-tenant isolation.
// ===================================================================

TEST(TenantBillingTest, TieredVolumePricingFoldsPerTenant) {
  DatabaseOptions opts = TenantDbOptions();
  opts.enable_result_cache = false;  // every run consumes machine time
  // Tiny tier boundaries (runs take milliseconds): the first 2ms of
  // compute at a premium, everything after at a discount.
  opts.pricing.compute_second_tiers = {{0.002, 10.0}, {1.0, 1.0}};
  auto db = MakeSsbDatabase(opts);
  SessionOptions acme;
  acme.tenant_id = "acme";
  Session session(db.get(), acme);

  for (int i = 0; i < 4; ++i) {
    auto run = session.ExecuteSql(FindQuery("Q3").sql);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
  }
  const auto bill = db->tenant_billing()["acme"];
  EXPECT_EQ(bill.runs, 4u);
  ASSERT_GT(bill.machine_seconds, 0.0);
  // Per-run marginal tiered charges telescope to one fold over the
  // tenant's total consumption — the gacspp-style price-level identity.
  EXPECT_NEAR(bill.dollars,
              TieredCost(0.0, bill.machine_seconds,
                         opts.pricing.compute_second_tiers,
                         db->node_type().price_per_second()),
              1e-9);
  // The session ledger settled every reservation to the tiered bill.
  EXPECT_NEAR(session.spent(), bill.dollars, 1e-9);
}

TEST(TenantBillingTest, ZeroCrossTenantBudgetBleed) {
  DatabaseOptions opts = TenantDbOptions();
  opts.pricing.compute_second_tiers = {{0.002, 10.0}, {1.0, 1.0}};
  auto db = MakeSsbDatabase(opts);
  SessionOptions a_opts;
  a_opts.tenant_id = "A";
  SessionOptions b_opts;
  b_opts.tenant_id = "B";
  Session a(db.get(), a_opts);
  Session b(db.get(), b_opts);

  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(a.ExecuteSql(FindQuery("Q3").sql).ok());
  }
  const auto bill_a = db->tenant_billing()["A"];
  const Dollars spent_a = a.spent();

  // B's activity (including hitting A-warmed caches) must not move A's
  // bill or A's ledger by a cent.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(b.ExecuteSql(FindQuery("Q3").sql).ok());
    ASSERT_TRUE(b.ExecuteSql("SELECT count(*) AS n FROM supplier").ok());
  }
  const auto after = db->tenant_billing();
  EXPECT_EQ(after.at("A").runs, bill_a.runs);
  EXPECT_EQ(after.at("A").dollars, bill_a.dollars);
  EXPECT_EQ(after.at("A").machine_seconds, bill_a.machine_seconds);
  EXPECT_EQ(a.spent(), spent_a);
  EXPECT_GT(after.at("B").runs, 0u);
  // Each tenant's ledger spend equals its own bill — conservation, no
  // bleed in either direction.
  EXPECT_NEAR(b.spent(), after.at("B").dollars, 1e-9);
}

}  // namespace
}  // namespace costdb
