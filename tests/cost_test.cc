#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <vector>

#include "common/stats_math.h"
#include "cost/calibration_updater.h"
#include "exec/sharded_engine.h"
#include "cost/cost_model.h"
#include "optimizer/optimizer.h"
#include "workload/ssb.h"

namespace costdb {
namespace {

class CostTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SsbOptions opts;
    opts.scale = 0.01;
    LoadSsb(&meta_, opts);
    node_ = PricingCatalog::Default().default_node();
  }

  /// Plan a query and return (plan, graph, volumes) through the estimator.
  struct Planned {
    PhysicalPlanPtr plan;
    PipelineGraph graph;
    VolumeMap volumes;
  };
  Planned Prepare(const std::string& sql) {
    Optimizer opt(&meta_);
    Binder binder(&meta_);
    auto query = binder.BindSql(sql);
    EXPECT_TRUE(query.ok()) << query.status().ToString();
    auto plan = opt.OptimizeQuery(*query);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    Planned out;
    out.plan = *plan;
    out.graph = BuildPipelines(out.plan.get());
    CardinalityEstimator cards(&meta_, &query->relations);
    out.volumes = ComputeVolumes(out.plan.get(), cards);
    return out;
  }

  MetadataService meta_;
  HardwareCalibration hw_;
  InstanceType node_;
};

TEST_F(CostTest, EffectiveParallelismSublinear) {
  EXPECT_DOUBLE_EQ(EffectiveParallelism(1, 0.1), 1.0);
  EXPECT_GT(EffectiveParallelism(8, 0.1), 1.0);
  EXPECT_LT(EffectiveParallelism(8, 0.1), 8.0);
  EXPECT_GT(EffectiveParallelism(16, 0.1), EffectiveParallelism(8, 0.1));
}

TEST_F(CostTest, ScanModelScalesLinearly) {
  // Inflate the served stats so scan time dwarfs the fixed pipeline
  // startup (the in-process dataset is tiny; a warehouse table is not).
  meta_.SetStatsErrorFactor("lineorder", 1e5);
  auto planned = Prepare(FindQuery("Q1").sql);
  // Q1 is scan->agg: the feeder pipeline is scan-dominated.
  CostEstimator est(&hw_, &node_);
  const Pipeline& feeder = planned.graph.pipelines[0];
  Seconds t1 = est.PipelineDuration(feeder, 1, planned.volumes);
  Seconds t8 = est.PipelineDuration(feeder, 8, planned.volumes);
  EXPECT_GT(t1, t8);
  // Near-linear: 8x nodes gives >=4x speedup on a scan-bound stage.
  EXPECT_GT(t1 / t8, 4.0);
}

TEST_F(CostTest, ShuffleLatencyEventuallyRises) {
  // Over-scaling a shuffle makes latency worse (paper Section 2): the sync
  // term grows with DOP while bandwidth gains flatten.
  StageWorkload w;
  w.rows_in = 1e7;
  w.bytes_in = 400 * kMiB;
  PhysicalPlan shuffle;
  shuffle.kind = PhysicalPlan::Kind::kExchange;
  shuffle.exchange_kind = ExchangeKind::kShuffle;
  auto model = MakeAnalyticModel(shuffle, &hw_);
  Seconds best = 1e18;
  int best_dop = 1;
  for (int d = 1; d <= 1024; d *= 2) {
    Seconds t = model->StageTime(w, d);
    if (t < best) {
      best = t;
      best_dop = d;
    }
  }
  EXPECT_GT(best_dop, 1);
  EXPECT_LT(best_dop, 1024);  // interior optimum
  EXPECT_GT(model->StageTime(w, 1024), best);
}

TEST_F(CostTest, AggregateMergeTermCreatesInteriorOptimum) {
  StageWorkload w;
  w.rows_in = 1e8;
  w.groups = 1e6;
  PhysicalPlan agg;
  agg.kind = PhysicalPlan::Kind::kHashAggregate;
  auto model = MakeAnalyticModel(agg, &hw_);
  Seconds t1 = model->StageTime(w, 1);
  Seconds t16 = model->StageTime(w, 16);
  Seconds t1024 = model->StageTime(w, 1024);
  EXPECT_LT(t16, t1);
  EXPECT_GT(t1024, t16);
}

TEST_F(CostTest, GatherDoesNotSpeedUpWithDop) {
  StageWorkload w;
  w.bytes_in = 1.0 * kGiB;
  PhysicalPlan g;
  g.kind = PhysicalPlan::Kind::kExchange;
  g.exchange_kind = ExchangeKind::kGather;
  auto model = MakeAnalyticModel(g, &hw_);
  EXPECT_DOUBLE_EQ(model->StageTime(w, 1), model->StageTime(w, 64));
}

TEST_F(CostTest, RegressionModelLearnsShuffle) {
  PhysicalPlan shuffle;
  shuffle.kind = PhysicalPlan::Kind::kExchange;
  shuffle.exchange_kind = ExchangeKind::kShuffle;
  auto truth = MakeAnalyticModel(shuffle, &hw_);
  std::vector<RegressionOperatorModel::Sample> samples;
  for (double rows : {1e5, 1e6, 1e7, 3e7}) {
    for (int dop : {1, 2, 4, 8, 16, 32}) {
      RegressionOperatorModel::Sample s;
      s.workload.rows_in = rows;
      s.workload.bytes_in = rows * 40.0;
      s.dop = dop;
      s.observed_time = truth->StageTime(s.workload, dop);
      samples.push_back(s);
    }
  }
  RegressionOperatorModel model("shuffle_reg");
  ASSERT_TRUE(model.Fit(samples));
  // Interpolation accuracy within 2x q-error on unseen points.
  StageWorkload w;
  w.rows_in = 5e6;
  w.bytes_in = w.rows_in * 40.0;
  double predicted = model.StageTime(w, 8);
  double actual = truth->StageTime(w, 8);
  EXPECT_LT(QError(predicted, actual), 2.0);
}

TEST_F(CostTest, RegressionRejectsTinySampleSets) {
  RegressionOperatorModel model("x");
  EXPECT_FALSE(model.Fit({}));
  EXPECT_FALSE(model.fitted());
}

TEST_F(CostTest, ScheduleRespectsDependenciesAndBillsBlocking) {
  // Hand-built diamond: two feeders (ids 0, 1) into consumer (id 2).
  PipelineGraph graph;
  Pipeline a, b, c;
  a.id = 0;
  b.id = 1;
  c.id = 2;
  c.dependencies = {0, 1};
  graph.pipelines = {a, b, c};
  std::map<int, Seconds> durations{{0, 10.0}, {1, 4.0}, {2, 5.0}};
  DopMap dops{{0, 4}, {1, 2}, {2, 8}};
  PlanCostEstimate est;
  SchedulePipelines(graph, durations, dops, &est);
  EXPECT_DOUBLE_EQ(est.latency, 15.0);  // max(10,4) + 5
  // Pipeline 1 finishes at 4 but its nodes are held until the consumer
  // starts at 10: 6 blocked seconds x 2 nodes.
  EXPECT_DOUBLE_EQ(est.blocked_machine_seconds, 12.0);
  EXPECT_DOUBLE_EQ(est.machine_seconds, 4 * 10.0 + 2 * 10.0 + 8 * 5.0);
}

TEST_F(CostTest, EstimatePlanProducesPositiveCost) {
  auto planned = Prepare(FindQuery("Q5").sql);
  CostEstimator est(&hw_, &node_);
  DopMap dops;
  for (const auto& p : planned.graph.pipelines) dops[p.id] = 4;
  auto e = est.EstimatePlan(planned.graph, dops, planned.volumes);
  EXPECT_GT(e.latency, 0.0);
  EXPECT_GT(e.cost, 0.0);
  EXPECT_GE(e.machine_seconds, e.latency);  // >=1 node the whole time
  EXPECT_EQ(e.pipelines.size(), planned.graph.pipelines.size());
}

// Property sweep: for a scan-dominated pipeline, doubling DOP divides
// latency roughly in half while machine-time (~cost) stays flat — the
// paper's "100 machines for 1 minute" identity.
class ElasticityProperty : public CostTest,
                           public ::testing::WithParamInterface<int> {};

TEST_P(ElasticityProperty, ScanMachineTimeInvariant) {
  meta_.SetStatsErrorFactor("lineorder", 1e5);  // warehouse-sized volumes
  auto planned = Prepare("SELECT sum(lo_revenue) FROM lineorder");
  CostEstimator est(&hw_, &node_);
  const Pipeline& feeder = planned.graph.pipelines[0];
  int dop = GetParam();
  Seconds t1 = est.PipelineDuration(feeder, 1, planned.volumes);
  Seconds td = est.PipelineDuration(feeder, dop, planned.volumes);
  double machine1 = 1 * t1;
  double machined = dop * td;
  // Startup overhead breaks the identity slightly; stay within 2.5x for
  // the in-range DOPs of this tiny dataset.
  EXPECT_LT(machined / machine1, 2.5) << "dop=" << dop;
  EXPECT_LT(td, t1);
}

INSTANTIATE_TEST_SUITE_P(Dops, ElasticityProperty,
                         ::testing::Values(2, 4, 8, 16));

TEST_F(CostTest, VolumesEstimateVsTruthDivergeUnderInjectedError) {
  Binder binder(&meta_);
  auto query = binder.BindSql(FindQuery("Q3").sql);
  ASSERT_TRUE(query.ok());
  Optimizer opt(&meta_);
  auto plan = opt.OptimizeQuery(*query);
  ASSERT_TRUE(plan.ok());
  meta_.SetStatsErrorFactor("lineorder", 4.0);
  CardinalityEstimator served(&meta_, &query->relations);
  CardinalityEstimator truth(&meta_, &query->relations,
                             /*use_true_stats=*/true);
  auto v_served = ComputeVolumes(plan->get(), served);
  auto v_truth = ComputeVolumes(plan->get(), truth);
  // Scan volumes (not the 1-row aggregate output) must diverge ~4x.
  std::function<const PhysicalPlan*(const PhysicalPlan*)> find_scan =
      [&](const PhysicalPlan* p) -> const PhysicalPlan* {
    if (p->kind == PhysicalPlan::Kind::kTableScan && p->alias == "lineorder") {
      return p;
    }
    for (const auto& ch : p->children) {
      const PhysicalPlan* f = find_scan(ch.get());
      if (f != nullptr) return f;
    }
    return nullptr;
  };
  const PhysicalPlan* scan = find_scan(plan->get());
  meta_.SetStatsErrorFactor("lineorder", 1.0);
  ASSERT_NE(scan, nullptr);
  double ratio = v_served.at(scan).source_rows / v_truth.at(scan).source_rows;
  EXPECT_NEAR(ratio, 4.0, 0.2);
}

TEST_F(CostTest, FilterChainChargesDispatchOnlyForSurvivingMorsels) {
  // Zone-map pruning drops whole morsels before any kernel runs, so the
  // batch-dispatch term must be charged per *surviving* morsel. With rows
  // and selectivity held fixed, shrinking `batches` from 200 to 20 must
  // cut exactly the dispatch fee of the 180 pruned morsels — per conjunct
  // on the interpreted chain, once for the whole fused chain.
  const double rows = 1e6;
  const int conjuncts = 3;
  const double sel = 0.2;
  Seconds full = InterpretedFilterChainTime(hw_, rows, conjuncts, sel,
                                            /*batches=*/200.0, 1);
  Seconds pruned = InterpretedFilterChainTime(hw_, rows, conjuncts, sel,
                                              /*batches=*/20.0, 1);
  EXPECT_LT(pruned, full);
  EXPECT_NEAR(full - pruned,
              conjuncts * 180.0 * hw_.batch_dispatch_seconds, 1e-12);

  Seconds fused_full = FusedFilterChainTime(hw_, rows, 200.0, 1);
  Seconds fused_pruned = FusedFilterChainTime(hw_, rows, 20.0, 1);
  EXPECT_NEAR(fused_full - fused_pruned, 180.0 * hw_.fused_dispatch_seconds,
              1e-12);

  // The fused chain's whole point: one dispatch per morsel instead of one
  // per conjunct per morsel, and one row pass instead of k narrowing
  // passes — cheaper on a multi-conjunct mid-selectivity chain.
  EXPECT_LT(FusedFilterChainTime(hw_, rows, 200.0, 1),
            InterpretedFilterChainTime(hw_, rows, 4, 0.3, 200.0, 1));
}

TEST_F(CostTest, SurvivingMorselsFollowPlannerPruneFraction) {
  PhysicalPlan scan;
  scan.kind = PhysicalPlan::Kind::kHashJoin;
  EXPECT_EQ(SurvivingScanMorsels(scan), -1.0);  // not a scan

  scan.kind = PhysicalPlan::Kind::kTableScan;
  EXPECT_EQ(SurvivingScanMorsels(scan), -1.0);  // no table handle

  auto lineorder = meta_.GetTable("lineorder");
  ASSERT_TRUE(lineorder.ok());
  scan.table = *lineorder;
  ASSERT_NE(scan.table, nullptr);
  const double total = static_cast<double>(scan.table->row_groups().size());
  EXPECT_EQ(SurvivingScanMorsels(scan), total);  // keep = 1.0 default
  scan.prune_keep_fraction = 0.25;
  EXPECT_EQ(SurvivingScanMorsels(scan), std::ceil(total * 0.25));
  scan.prune_keep_fraction = 0.0;
  EXPECT_EQ(SurvivingScanMorsels(scan), 0.0);
}

TEST_F(CostTest, ObserveFusedMovesOnlyTheFusedTerms) {
  HardwareCalibration hw;
  const HardwareCalibration before = hw;
  CalibrationUpdater updater(&hw);

  // The fused kernels run 4x slower here than the seeded calibration
  // claims: predictions must grow by ~scale, nothing else may move.
  std::vector<FusedObservation> obs(3);
  for (auto& o : obs) {
    o.rows = 1e6;
    o.batches = 120.0;
    o.seconds = 4.0 * (o.rows / hw.fused_filter_rows_per_sec +
                       o.batches * hw.fused_dispatch_seconds);
  }
  CalibrationReport report = updater.ObserveFused(obs);
  EXPECT_EQ(report.pipelines_observed, 3);
  EXPECT_GT(report.applied_scale, 1.0);
  EXPECT_LT(report.q_error_after, report.q_error_before);
  EXPECT_DOUBLE_EQ(updater.fused_total_scale(), report.applied_scale);

  // Fused rate slowed, fused dispatch grew...
  EXPECT_LT(hw.fused_filter_rows_per_sec, before.fused_filter_rows_per_sec);
  EXPECT_GT(hw.fused_dispatch_seconds, before.fused_dispatch_seconds);
  // ...and the interpreted rates fusion competes against stayed put.
  EXPECT_DOUBLE_EQ(hw.filter_rows_per_sec, before.filter_rows_per_sec);
  EXPECT_DOUBLE_EQ(hw.batch_dispatch_seconds, before.batch_dispatch_seconds);
  EXPECT_DOUBLE_EQ(hw.scan_gibps_per_node, before.scan_gibps_per_node);
  EXPECT_DOUBLE_EQ(hw.shuffle_gibps, before.shuffle_gibps);

  // Converges: repeated identical observations shrink the remaining gap.
  CalibrationReport second = updater.ObserveFused(obs);
  EXPECT_LT(second.q_error_before, report.q_error_before);
}

TEST_F(CostTest, ObserveTransportMovesOnlyTheLinkTerms) {
  HardwareCalibration hw;
  const HardwareCalibration before = hw;
  CalibrationUpdater updater(&hw);

  // The measured serialize+transfer share of each exchange runs 3x slower
  // than the seeded link terms predict: the three link terms must move by
  // ~scale, every other tier — including the shuffle copy term the link
  // share was subtracted from — must stay put.
  std::vector<ExchangeTiming> timings(3);
  for (auto& t : timings) {
    t.transport = TransportKind::kSocket;
    t.bytes = 4.0 * kMiB;
    t.partitions = 4;
    t.wire_bytes = 4.0 * kMiB;
    t.transfers = 12;
    t.link_seconds =
        3.0 * (t.wire_bytes / (hw.wire_serialize_gibps * kGiB) +
               t.wire_bytes / (hw.link_gibps * kGiB) +
               static_cast<double>(t.transfers) * hw.link_rtt_seconds);
    t.seconds = t.link_seconds + 0.002;
  }
  CalibrationReport report = updater.ObserveTransport(timings);
  EXPECT_EQ(report.pipelines_observed, 3);
  EXPECT_GT(report.applied_scale, 1.0);
  EXPECT_LT(report.q_error_after, report.q_error_before);
  EXPECT_DOUBLE_EQ(updater.link_total_scale(), report.applied_scale);

  // Serialize and link bandwidth slowed, per-transfer RTT grew...
  EXPECT_LT(hw.wire_serialize_gibps, before.wire_serialize_gibps);
  EXPECT_LT(hw.link_gibps, before.link_gibps);
  EXPECT_GT(hw.link_rtt_seconds, before.link_rtt_seconds);
  // ...and everything else stayed put, most importantly the shuffle copy
  // term that shares the same measured exchanges.
  EXPECT_DOUBLE_EQ(hw.shuffle_gibps, before.shuffle_gibps);
  EXPECT_DOUBLE_EQ(hw.shuffle_dispatch_seconds,
                   before.shuffle_dispatch_seconds);
  EXPECT_DOUBLE_EQ(hw.scan_gibps_per_node, before.scan_gibps_per_node);
  EXPECT_DOUBLE_EQ(hw.filter_rows_per_sec, before.filter_rows_per_sec);
  EXPECT_DOUBLE_EQ(hw.fused_filter_rows_per_sec,
                   before.fused_filter_rows_per_sec);
  EXPECT_DOUBLE_EQ(hw.storage_read_gibps, before.storage_read_gibps);
  // The configuration knob is not a calibrated term.
  EXPECT_EQ(hw.exchange_transport, before.exchange_transport);

  // In-process timings (no wire bytes) are not link observations: the
  // round is a no-op instead of dragging the link terms toward zero.
  std::vector<ExchangeTiming> inproc(2);
  for (auto& t : inproc) {
    t.bytes = kMiB;
    t.seconds = 0.01;
  }
  const double serialize_now = hw.wire_serialize_gibps;
  CalibrationReport empty = updater.ObserveTransport(inproc);
  EXPECT_EQ(empty.pipelines_observed, 0);
  EXPECT_DOUBLE_EQ(hw.wire_serialize_gibps, serialize_now);

  // ObserveShuffles on transported timings calibrates the copy term
  // against seconds *minus* the link share — with the link share exactly
  // excluded, a link slowdown alone cannot move shuffle_gibps upward into
  // pretending the copy path got slower.
  CalibrationReport second = updater.ObserveTransport(timings);
  EXPECT_LT(second.q_error_before, report.q_error_before);
}

TEST_F(CostTest, ObserveStorageMovesOnlyTheStorageTerms) {
  HardwareCalibration hw;
  const HardwareCalibration before = hw;
  CalibrationUpdater updater(&hw);

  // Cold-block reads run 3x slower than the seeded calibration claims:
  // the storage tier must move by ~scale, nothing else may.
  std::vector<StorageObservation> obs(4);
  for (auto& o : obs) {
    o.bytes = 8.0 * kMiB;
    o.blocks = 16.0;
    o.seconds = 3.0 * (o.bytes / (hw.storage_read_gibps * kGiB) +
                       o.blocks * hw.storage_get_seconds);
  }
  CalibrationReport report = updater.ObserveStorage(obs);
  EXPECT_EQ(report.pipelines_observed, 4);
  EXPECT_GT(report.applied_scale, 1.0);
  EXPECT_LT(report.q_error_after, report.q_error_before);
  EXPECT_DOUBLE_EQ(updater.storage_total_scale(), report.applied_scale);

  // Cold-read bandwidth slowed, per-GET latency grew...
  EXPECT_LT(hw.storage_read_gibps, before.storage_read_gibps);
  EXPECT_GT(hw.storage_get_seconds, before.storage_get_seconds);
  // ...and every other tier stayed put, including the object-store scan
  // bandwidth the storage terms deliberately sit below.
  EXPECT_DOUBLE_EQ(hw.scan_gibps_per_node, before.scan_gibps_per_node);
  EXPECT_DOUBLE_EQ(hw.filter_rows_per_sec, before.filter_rows_per_sec);
  EXPECT_DOUBLE_EQ(hw.shuffle_gibps, before.shuffle_gibps);
  EXPECT_DOUBLE_EQ(hw.fused_filter_rows_per_sec,
                   before.fused_filter_rows_per_sec);

  // The uniform pipeline loop moves the storage terms too, and the drift
  // tracker records that movement.
  std::vector<CalibrationObservation> pairs(2);
  for (auto& p : pairs) {
    p.predicted = 1.0;
    p.actual = 2.0;
  }
  const double tracked = updater.storage_total_scale();
  CalibrationReport uniform = updater.ObservePairs(pairs);
  EXPECT_GT(uniform.applied_scale, 1.0);
  EXPECT_DOUBLE_EQ(updater.storage_total_scale(),
                   tracked * uniform.applied_scale);
}

}  // namespace
}  // namespace costdb
